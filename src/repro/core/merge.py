"""Prefix-tree merging (paper, Algorithm 3).

Merging the child nodes of a node projects out that node's attribute: the
resulting tree describes the same entities with one fewer attribute.  Two
properties matter for efficiency and both come straight from the paper:

* **Degenerate merges are free.**  When only one node is to be merged the
  node itself is returned, unchanged and shared.  On sparse data most merges
  are degenerate.
* **Subtrees are shared, never copied.**  A non-degenerate merge allocates
  one new node whose cells either point at freshly merged children or at
  already-existing (shared) subtrees.  Sharing extends to the cell objects
  themselves: a value present in only one input contributes its existing
  cell to the merged node, and a fresh cell is allocated only on a value
  collision — shared cells are therefore never mutated, which keeps every
  pre-existing node's counts exact.

Two performance-layer additions on top of the paper:

* The merge runs on an **explicit work stack** instead of Python recursion,
  so a tree hundreds of levels deep merges without touching the recursion
  limit (and without per-level call overhead).  Work items are processed in
  the exact depth-first order of the former recursion, so statistics and
  fault-injection checkpoints fire in the same sequence.
* An optional :class:`~repro.perf.merge_cache.MergeCache` memoizes
  non-degenerate merges by the identity tuple of their inputs: the
  traversal re-merges identical node groups across slices, and a cache hit
  returns the shared, already-built (and typically already-traversed)
  subtree instead of rebuilding it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.prefix_tree import Cell, Node, PrefixTree
from repro.core.stats import SearchStats
from repro.robustness import faults

__all__ = ["merge_nodes", "merge_children", "merge_forest"]


def merge_nodes(
    tree: PrefixTree,
    to_merge: Sequence[Node],
    stats: Optional[SearchStats] = None,
    cache: Optional[object] = None,
) -> Node:
    """Merge a set of same-level nodes into one node (Algorithm 3).

    The returned node is *not* reference-acquired; callers that keep it
    (the NonKeyFinder keeps merge roots while traversing them) must wrap it
    with ``tree.acquire`` and release it with ``tree.discard``.

    Parameters
    ----------
    tree:
        The owning tree; supplies node allocation and statistics.
    to_merge:
        Non-empty sequence of nodes at the same level.
    stats:
        Optional search statistics; merge counters are bumped when given.
    cache:
        Optional :class:`~repro.perf.merge_cache.MergeCache` (already bound
        to ``tree``); non-degenerate merges are memoized by input identity.
    """
    if not to_merge:
        raise ValueError("merge_nodes requires at least one node")
    # The injector is hoisted out of the loop: it cannot change mid-call
    # (``faults.inject`` wraps whole runs), and the ``check`` call per
    # degenerate sub-merge was measurable on its own.
    injector = faults._active
    if injector is not None:
        injector.hit("merge.node")
    if len(to_merge) == 1:
        # Degenerate merge: the (shared) node itself is the result.
        if stats is not None:
            stats.merges_performed += 1
            stats.merge_nodes_input += 1
        return to_merge[0]

    # Hot-loop locals: most merges on sparse data degenerate into shared
    # subtrees, so the loop below inlines degenerate sub-merges at group
    # creation time and only pushes genuinely multi-input work items.
    tree_stats = tree.stats
    acquire = tree.acquire
    new_node = tree.new_node
    # Without an armed budget there is no per-allocation cap to honor, so
    # nodes are allocated directly and accounted in one batched stats call
    # at the end; a budgeted run keeps the per-node ``new_node`` path.
    direct_alloc = tree.budget is None
    # Re-read per call: a self-disabled cache (see MergeCache autotune) must
    # not keep paying id-tuple construction on every remaining merge.
    probe = cache.probe if cache is not None and not cache.disabled else None
    last_level = tree.num_attributes - 1
    merges = 0
    inputs_total = 0
    nodes_created = 0

    # ``result`` receives the root of the merge; every deeper work item
    # attaches its output to a parent cell instead.  Work items are
    # ``(inputs, target)``; a cache-store item ``(None, key, node)`` is
    # pushed *under* a merge's sub-work so the entry is recorded only once
    # the whole subtree is built.
    result: List[Optional[Node]] = [None]
    stack: List[tuple] = [(tuple(to_merge), None)]
    try:
        while stack:
            task = stack.pop()
            if len(task) == 3:
                cache.store(task[1], task[2])
                continue
            inputs, target = task
            if target is not None and injector is not None:
                injector.hit("merge.node")
            merges += 1
            inputs_total += len(inputs)

            if probe is not None:
                key = tuple(map(id, inputs))
                node, store_wanted = probe(key)
                if node is not None:
                    if target is None:
                        result[0] = node
                    else:
                        target.child = acquire(node)
                    continue
            else:
                store_wanted = False

            first = inputs[0]
            if direct_alloc:
                merged = Node(first.level)
                nodes_created += 1
            else:
                merged = new_node(first.level)
            entity_total = first.entity_count
            first_cells = first.cells
            if first.level == last_level:
                # Leaf merge.  Cells are *shared*, not copied: the first
                # input seeds the result with a C-speed dict copy of its
                # cell objects, and later inputs share theirs value-wise.
                # Only a value collision allocates — a fresh cell holding
                # the summed count — so a shared cell is never mutated and
                # every pre-existing node keeps its exact counts.
                merged_cells = dict(first_cells)
                mget = merged_cells.get
                for node in inputs[1:]:
                    entity_total += node.entity_count
                    for value, cell in node.cells.items():
                        existing = mget(value)
                        if existing is None:
                            merged_cells[value] = cell
                        else:
                            merged_cells[value] = Cell(
                                value, existing.count + cell.count
                            )
                merged.cells = merged_cells
                merged.entity_count = entity_total
                cells_created = len(merged_cells)
                subtasks = None
            else:
                # Group the children of cells sharing a value, then merge
                # each group one level deeper.  Iterating nodes in order
                # keeps the result deterministic (dict preserves insertion
                # order).  Groups are built lazily — a lone cell stays
                # itself and only a collision allocates a list — because
                # most merges on sparse data degenerate almost everywhere
                # and the ``[cell]`` boxes dominated this loop's cost.
                groups = dict(first_cells)
                gget = groups.get
                for node in inputs[1:]:
                    entity_total += node.entity_count
                    for value, cell in node.cells.items():
                        group = gget(value)
                        if group is None:
                            groups[value] = cell
                        elif type(group) is list:
                            group.append(cell)
                        else:
                            groups[value] = [group, cell]
                merged.entity_count = entity_total
                subtasks = None
                # Resolution pass: a single-cell group is a degenerate
                # sub-merge — share the cell itself (no mutation can reach
                # it: collisions above and in recursion always allocate)
                # and take a reference on its subtree; a collision group
                # becomes a fresh cell plus a deeper work item.  ``groups``
                # doubles as the merged node's cell dict (replacing values
                # in-place is safe: the key set is already final).
                singles = 0
                for value, group in groups.items():
                    if type(group) is not list:
                        group.child.refcount += 1
                        singles += 1
                    else:
                        count = 0
                        for cell in group:
                            count += cell.count
                        new_cell = Cell(value, count)
                        if subtasks is None:
                            subtasks = []
                        subtasks.append(
                            (tuple(cell.child for cell in group), new_cell)
                        )
                        groups[value] = new_cell
                if singles:
                    # Degenerate sub-merges count exactly as before; the
                    # injector replays one hit per degenerate so fault plans
                    # keyed by hit count fire at the same points.
                    merges += singles
                    inputs_total += singles
                    if injector is not None:
                        for _ in range(singles):
                            injector.hit("merge.node")
                merged.cells = groups
                cells_created = len(groups)
            tree_stats.on_cells_created(cells_created)

            if target is None:
                result[0] = merged
            else:
                target.child = acquire(merged)
            if store_wanted:
                stack.append((None, key, merged))
            if subtasks:
                # Reverse push so sub-merges pop in group order — the same
                # depth-first sequence the recursive formulation produced.
                subtasks.reverse()
                stack.extend(subtasks)
    finally:
        if nodes_created:
            tree_stats.on_nodes_created(nodes_created)
        if stats is not None:
            stats.merges_performed += merges
            stats.merge_nodes_input += inputs_total
    return result[0]


def merge_forest(
    tree: PrefixTree,
    roots: Sequence[Node],
    stats: Optional[SearchStats] = None,
) -> Node:
    """Merge the roots of several disjoint partial trees into one tree.

    This is the combine step of the sharded parallel build: because the
    merge operator is associative and commutative on the multiset of
    entities (Algorithm 3 unions cells value-wise and sums counts), partial
    prefix trees built over disjoint row chunks merge into exactly the tree
    a single pass over all rows would have produced — and merging them
    pairwise, left to right in row order, also reproduces the serial
    build's cell insertion order.
    """
    return merge_nodes(tree, roots, stats=stats)


def merge_children(
    tree: PrefixTree,
    node: Node,
    stats: Optional[SearchStats] = None,
    cache: Optional[object] = None,
) -> Node:
    """Merge all children of ``node``'s cells — i.e. project out ``node``'s level.

    This is the "Merge all the children of the cells in root" step of
    Algorithm 4 (line 27).  ``node`` must not be a leaf.
    """
    children = [cell.child for cell in node.cells.values()]
    if any(child is None for child in children):
        raise ValueError("cannot merge the children of a leaf node")
    return merge_nodes(tree, children, stats=stats, cache=cache)

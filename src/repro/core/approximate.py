"""Sampling-based approximate key discovery — the public face of section 3.9.

``find_approximate_keys`` packages the full pipeline the paper evaluates in
Figures 14-15: sample the data (Bernoulli fraction or fixed-size
reservoir), run GORDIAN on the sample, evaluate every discovered key's
exact strength on the full data, attach the ``T(K)`` Bayesian lower bound,
and classify keys as true / approximate / false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.gordian import GordianConfig, find_keys, run_with_budget
from repro.core.strength import StrengthEvaluator, bayesian_strength_bound
from repro.dataset.sampling import reservoir_sample, sample_rows

__all__ = ["ApproximateKey", "ApproximateKeyResult", "find_approximate_keys"]


@dataclass(frozen=True)
class ApproximateKey:
    """One sample-discovered key with its quality measures."""

    attrs: Tuple[int, ...]
    #: Exact strength on the full dataset (1.0 = strict key).
    strength: float
    #: The paper's T(K) lower bound, computed from the sample.
    bound: float

    @property
    def is_true_key(self) -> bool:
        return self.strength >= 1.0


@dataclass
class ApproximateKeyResult:
    """Outcome of one sample-discover-evaluate pipeline run."""

    keys: List[ApproximateKey]
    sample_size: int
    total_rows: int
    threshold: float

    @property
    def true_keys(self) -> List[ApproximateKey]:
        return [key for key in self.keys if key.is_true_key]

    @property
    def approximate_keys(self) -> List[ApproximateKey]:
        """Non-strict keys whose strength still clears the threshold."""
        return [
            key
            for key in self.keys
            if not key.is_true_key and key.strength >= self.threshold
        ]

    @property
    def false_keys(self) -> List[ApproximateKey]:
        """Sample keys whose full-data strength falls below the threshold."""
        return [key for key in self.keys if key.strength < self.threshold]

    @property
    def false_key_ratio(self) -> float:
        """The paper's Figure 15 statistic (inf when no true key was found)."""
        if not self.true_keys:
            return float("inf") if self.false_keys else float("nan")
        return len(self.false_keys) / len(self.true_keys)

    @property
    def min_strength(self) -> float:
        """The paper's Figure 14 statistic."""
        if not self.keys:
            return float("nan")
        return min(key.strength for key in self.keys)


def find_approximate_keys(
    rows: Sequence[Sequence[object]],
    fraction: Optional[float] = None,
    size: Optional[int] = None,
    seed: Optional[int] = None,
    threshold: float = 0.8,
    config: Optional[GordianConfig] = None,
    num_attributes: Optional[int] = None,
    budget: Optional[object] = None,
    max_eval_rows: Optional[int] = None,
) -> ApproximateKeyResult:
    """Discover keys on a sample and grade them against the full data.

    Parameters
    ----------
    rows:
        The full dataset.
    fraction / size:
        Exactly one of Bernoulli fraction or reservoir sample size.
    seed:
        Sampling seed (results are deterministic given the seed).
    threshold:
        Strength below which a discovered key counts as *false* (the paper
        uses 0.8 in section 4.3).
    config, num_attributes:
        Forwarded to :func:`repro.core.find_keys`.
    budget:
        Optional :class:`~repro.robustness.RunBudget` (or armed meter) for
        the sampled GORDIAN run; used by the degraded-mode fallback so even
        the fallback cannot run away.
    max_eval_rows:
        Cap on the rows used to grade strengths.  Beyond the cap a fixed
        reservoir sample of the full data stands in, making ``strength`` an
        estimate — the price of grading inside a budget.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if num_attributes is None:
        if not rows:
            raise ValueError("num_attributes is required for an empty dataset")
        num_attributes = len(rows[0])
    sample = sample_rows(rows, fraction=fraction, size=size, seed=seed)
    if not sample:
        return ApproximateKeyResult(
            keys=[], sample_size=0, total_rows=len(rows), threshold=threshold
        )
    if budget is not None:
        result = run_with_budget(
            sample, budget, num_attributes=num_attributes, config=config
        )
    else:
        result = find_keys(sample, num_attributes=num_attributes, config=config)
    if result.no_keys_exist:
        return ApproximateKeyResult(
            keys=[],
            sample_size=len(sample),
            total_rows=len(rows),
            threshold=threshold,
        )
    eval_rows = rows
    if max_eval_rows is not None and len(rows) > max_eval_rows:
        eval_rows = reservoir_sample(rows, max_eval_rows, seed=0)
    evaluator = StrengthEvaluator(eval_rows, num_attributes)
    sample_distinct = [
        len({row[attr] for row in sample}) for attr in range(num_attributes)
    ]
    graded = [
        ApproximateKey(
            attrs=tuple(key),
            strength=evaluator.strength(key),
            bound=bayesian_strength_bound(
                len(sample), [sample_distinct[attr] for attr in key]
            ),
        )
        for key in result.keys
    ]
    graded.sort(key=lambda k: (-k.strength, len(k.attrs), k.attrs))
    return ApproximateKeyResult(
        keys=graded,
        sample_size=len(sample),
        total_rows=len(rows),
        threshold=threshold,
    )

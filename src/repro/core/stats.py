"""Instrumentation counters shared by the prefix tree and NonKeyFinder.

The paper's evaluation reports processing time, maximum memory usage
(Table 2), and the effect of the pruning rules (Figure 13).  To reproduce
those measurements deterministically we count structural events (node and
cell allocations, merges, prunings) in addition to wall-clock time, so the
benchmark shapes do not depend on allocator noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional


@dataclass
class TreeStats:
    """Structural accounting for prefix-tree nodes and cells.

    ``live_*`` counters follow the reference-counting discard scheme the
    paper describes in section 3.3 ("a reference-counting scheme was used"),
    so ``peak_live_nodes`` is a faithful stand-in for maximum memory.
    """

    nodes_created: int = 0
    cells_created: int = 0
    nodes_discarded: int = 0
    live_nodes: int = 0
    live_cells: int = 0
    peak_live_nodes: int = 0
    peak_live_cells: int = 0

    def on_node_created(self, cell_count: int = 0) -> None:
        self.nodes_created += 1
        self.live_nodes += 1
        if self.live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self.live_nodes
        if cell_count:
            self.on_cells_created(cell_count)

    def on_nodes_created(self, count: int) -> None:
        """Batched :meth:`on_node_created` (no cells) — the merge operator
        accounts a whole merge's allocations at once instead of per node."""
        self.nodes_created += count
        self.live_nodes += count
        if self.live_nodes > self.peak_live_nodes:
            self.peak_live_nodes = self.live_nodes

    def on_cells_created(self, count: int = 1) -> None:
        self.cells_created += count
        self.live_cells += count
        if self.live_cells > self.peak_live_cells:
            self.peak_live_cells = self.live_cells

    def on_node_discarded(self, cell_count: int) -> None:
        self.nodes_discarded += 1
        self.live_nodes -= 1
        self.live_cells -= cell_count

    def as_dict(self) -> Dict[str, int]:
        return {
            "nodes_created": self.nodes_created,
            "cells_created": self.cells_created,
            "nodes_discarded": self.nodes_discarded,
            "live_nodes": self.live_nodes,
            "live_cells": self.live_cells,
            "peak_live_nodes": self.peak_live_nodes,
            "peak_live_cells": self.peak_live_cells,
        }


@dataclass
class SearchStats:
    """Event counters for one NonKeyFinder run.

    These back Figure 13 (pruning effect): each pruning rule increments its
    own counter, and ``nodes_visited``/``merges_performed`` measure the work
    actually done.
    """

    nodes_visited: int = 0
    leaf_nodes_visited: int = 0
    merges_performed: int = 0
    merge_nodes_input: int = 0
    nonkeys_discovered: int = 0
    nonkeys_inserted: int = 0
    singleton_prunings_shared: int = 0
    singleton_prunings_one_cell: int = 0
    single_entity_prunings: int = 0
    futility_prunings: int = 0
    # Merge-memoization counters (zero when no MergeCache is attached).
    # ``merge_cache_autodisables`` counts caches that self-disabled after
    # their probe window showed a hopeless hit rate — at most one per cache,
    # so in a parallel run it can reach the worker count.
    merge_cache_hits: int = 0
    merge_cache_misses: int = 0
    merge_cache_evictions: int = 0
    merge_cache_autodisables: int = 0
    # Supervision counters (zero in serial runs and fault-free parallel
    # runs): failed-task re-dispatches, tasks the parent had to run itself,
    # pool kill/restart cycles, and worker budget-share self-interrupts.
    tasks_retried: int = 0
    serial_fallbacks: int = 0
    pool_restarts: int = 0
    worker_budget_trips: int = 0
    # Checkpoint counters (zero outside checkpointed runs): successful
    # checkpoint generations written, periodic writes that failed past the
    # retry budget (the run continues), and slices a resumed run skipped
    # because a checkpoint recorded them as complete.  Cumulative across
    # resumes — each checkpoint carries the counters forward.
    checkpoints_written: int = 0
    checkpoint_write_failures: int = 0
    slices_resumed_skipped: int = 0
    # Adaptive-scheduler counters (zero in serial runs): work packets
    # dispatched (resubmits after a budget trip count — each is a real
    # dispatch), snapshots that exceeded the shipping limit, snapshot
    # shipments of each kind (a delta shipment with zero masks is the
    # protocol working, not the feature being off), and the mask/byte
    # volume shipped as full prefixes vs digest-aware deltas.
    packets_dispatched: int = 0
    snapshots_truncated: int = 0
    snapshots_full: int = 0
    snapshots_delta: int = 0
    snapshot_masks_full: int = 0
    snapshot_masks_delta: int = 0
    snapshot_bytes_full: int = 0
    snapshot_bytes_delta: int = 0
    # Scheduler gauges — observations, not additive counters, so they stay
    # out of COUNTER_FIELDS (summing a min over resumes would be wrong).
    # ``packet_weight_final`` is the adaptive controller's last packet
    # weight; the wall gauges summarize in-worker per-packet elapsed time.
    packet_weight_final: int = 0
    packet_wall_min_s: float = 0.0
    packet_wall_mean_s: float = 0.0
    packet_wall_max_s: float = 0.0

    #: Every additive counter field, in declaration order.  Drives
    #: :meth:`add_counters` (parallel workers report their per-task counters
    #: as plain dicts, aggregated into the parent's stats here).
    COUNTER_FIELDS = (
        "nodes_visited",
        "leaf_nodes_visited",
        "merges_performed",
        "merge_nodes_input",
        "nonkeys_discovered",
        "nonkeys_inserted",
        "singleton_prunings_shared",
        "singleton_prunings_one_cell",
        "single_entity_prunings",
        "futility_prunings",
        "merge_cache_hits",
        "merge_cache_misses",
        "merge_cache_evictions",
        "merge_cache_autodisables",
        "tasks_retried",
        "serial_fallbacks",
        "pool_restarts",
        "worker_budget_trips",
        "checkpoints_written",
        "checkpoint_write_failures",
        "slices_resumed_skipped",
        "packets_dispatched",
        "snapshots_truncated",
        "snapshots_full",
        "snapshots_delta",
        "snapshot_masks_full",
        "snapshot_masks_delta",
        "snapshot_bytes_full",
        "snapshot_bytes_delta",
    )

    @property
    def total_prunings(self) -> int:
        return (
            self.singleton_prunings_shared
            + self.singleton_prunings_one_cell
            + self.single_entity_prunings
            + self.futility_prunings
        )

    @property
    def merge_cache_hit_rate(self) -> float:
        """Fraction of cache probes that hit (0.0 with no probes)."""
        attempts = self.merge_cache_hits + self.merge_cache_misses
        return 0.0 if attempts == 0 else self.merge_cache_hits / attempts

    def add_counters(self, counters: Mapping[str, int]) -> None:
        """Accumulate another run's (or worker task's) counters into this.

        Unknown and derived keys (``total_prunings``, the hit rate) are
        ignored, so a worker's ``as_dict()`` output feeds in directly.
        """
        for name in self.COUNTER_FIELDS:
            value = counters.get(name)
            if value:
                setattr(self, name, getattr(self, name) + value)

    def summary(self) -> str:
        """One-line human-readable digest of the search."""
        return (
            f"visited {self.nodes_visited} nodes "
            f"({self.leaf_nodes_visited} leaves), "
            f"{self.merges_performed} merges, "
            f"{self.nonkeys_discovered} non-keys discovered "
            f"({self.nonkeys_inserted} kept), "
            f"{self.total_prunings} prunings, "
            f"merge-cache hit rate {100.0 * self.merge_cache_hit_rate:.1f}%"
        )

    def as_dict(self) -> Dict[str, int]:
        data = {
            "nodes_visited": self.nodes_visited,
            "leaf_nodes_visited": self.leaf_nodes_visited,
            "merges_performed": self.merges_performed,
            "merge_nodes_input": self.merge_nodes_input,
            "nonkeys_discovered": self.nonkeys_discovered,
            "nonkeys_inserted": self.nonkeys_inserted,
            "singleton_prunings_shared": self.singleton_prunings_shared,
            "singleton_prunings_one_cell": self.singleton_prunings_one_cell,
            "single_entity_prunings": self.single_entity_prunings,
            "futility_prunings": self.futility_prunings,
            "merge_cache_hits": self.merge_cache_hits,
            "merge_cache_misses": self.merge_cache_misses,
            "merge_cache_evictions": self.merge_cache_evictions,
            "merge_cache_autodisables": self.merge_cache_autodisables,
            "tasks_retried": self.tasks_retried,
            "serial_fallbacks": self.serial_fallbacks,
            "pool_restarts": self.pool_restarts,
            "worker_budget_trips": self.worker_budget_trips,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_write_failures": self.checkpoint_write_failures,
            "slices_resumed_skipped": self.slices_resumed_skipped,
            "packets_dispatched": self.packets_dispatched,
            "snapshots_truncated": self.snapshots_truncated,
            "snapshots_full": self.snapshots_full,
            "snapshots_delta": self.snapshots_delta,
            "snapshot_masks_full": self.snapshot_masks_full,
            "snapshot_masks_delta": self.snapshot_masks_delta,
            "snapshot_bytes_full": self.snapshot_bytes_full,
            "snapshot_bytes_delta": self.snapshot_bytes_delta,
            "packet_weight_final": self.packet_weight_final,
            "packet_wall_min_s": self.packet_wall_min_s,
            "packet_wall_mean_s": self.packet_wall_mean_s,
            "packet_wall_max_s": self.packet_wall_max_s,
        }
        data["total_prunings"] = self.total_prunings
        data["merge_cache_hit_rate"] = round(self.merge_cache_hit_rate, 4)
        return data


@dataclass
class RunStats:
    """Aggregate statistics returned with every GORDIAN result.

    ``budget`` holds a :meth:`~repro.robustness.BudgetMeter.snapshot` when
    the run executed under a budget (checkpoints, visit counts, estimated
    bytes, and — for aborted runs — the reason the budget tripped).
    ``completed_phases`` records which pipeline phases finished, which is how
    partial-run stats salvaged from an aborted run are interpreted.
    """

    tree: TreeStats = field(default_factory=TreeStats)
    search: SearchStats = field(default_factory=SearchStats)
    build_seconds: float = 0.0
    search_seconds: float = 0.0
    convert_seconds: float = 0.0
    budget: Optional[Dict[str, object]] = None
    completed_phases: list = field(default_factory=list)
    #: Process-wide peak resident set size in KiB at the end of the run,
    #: from ``resource.getrusage`` (``None`` where the module is missing).
    #: A gauge, not a counter: it measures the whole process since start,
    #: so it backs the BENCH memory-bound claims rather than per-phase
    #: attribution.
    peak_rss_kb: Optional[int] = None

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.search_seconds + self.convert_seconds

    def as_dict(self) -> Dict[str, object]:
        return {
            "tree": self.tree.as_dict(),
            "search": self.search.as_dict(),
            "build_seconds": self.build_seconds,
            "search_seconds": self.search_seconds,
            "convert_seconds": self.convert_seconds,
            "total_seconds": self.total_seconds,
            "budget": self.budget,
            "completed_phases": list(self.completed_phases),
            "peak_rss_kb": self.peak_rss_kb,
        }


def measure_peak_rss_kb() -> Optional[int]:
    """Current process's peak RSS in KiB, or ``None`` if unmeasurable.

    ``ru_maxrss`` is kibibytes on Linux but bytes on macOS; both are
    normalized to KiB here so BENCH files compare across platforms.
    """
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - measured on Linux CI
        peak //= 1024
    return int(peak)

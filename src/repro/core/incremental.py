"""Incremental key maintenance under inserts (paper, section 5).

The paper notes that "GORDIAN also works well with updates, since usual
referential constraints or triggers can be set to check for the continuing
validity of a key."  This module implements the stronger version: keep the
*exact* minimal-key set up to date as entities arrive, without re-running
discovery from scratch.

The insight is the agree-set view of non-keys: an attribute set ``K`` is a
non-key iff some pair of entities agrees on every attribute of ``K``, i.e.
iff ``K`` is a subset of that pair's *agreement set*.  The maximal non-keys
are exactly the maximal pairwise agreement sets.  Inserting a new entity
can only create agreements between the newcomer and existing entities, so
one prefix-tree walk computing the maximal agreement masks of the newcomer
updates the NonKeySet exactly; keys are re-derived (lazily) with
Algorithm 6.

The walk prunes with the same futility idea as the batch algorithm: a
branch whose best-possible agreement is already covered by a known non-key
cannot contribute a new maximal non-key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core import bitset
from repro.core.key_conversion import keys_from_nonkey_masks
from repro.core.nonkey_set import NonKeySet
from repro.core.prefix_tree import Node, PrefixTree
from repro.errors import DataError, NoKeysExistError

__all__ = ["InsertReport", "IncrementalGordian"]


@dataclass
class InsertReport:
    """What one insert changed."""

    new_nonkeys: List[Tuple[int, ...]] = field(default_factory=list)
    became_keyless: bool = False

    @property
    def changed(self) -> bool:
        return self.became_keyless or bool(self.new_nonkeys)


class IncrementalGordian:
    """Maintains the minimal keys of a growing collection of entities."""

    def __init__(
        self,
        num_attributes: int,
        attribute_names: Optional[Sequence[str]] = None,
    ):
        if num_attributes < 1:
            raise DataError("a dataset needs at least one attribute")
        if attribute_names is not None and len(attribute_names) != num_attributes:
            raise DataError(
                f"{len(attribute_names)} names for {num_attributes} attributes"
            )
        self.num_attributes = num_attributes
        self.attribute_names = list(attribute_names) if attribute_names else None
        self.tree = PrefixTree(num_attributes)
        self.nonkeys = NonKeySet(num_attributes)
        self.num_entities = 0
        self.no_keys_exist = False
        self._keys_cache: Optional[List[int]] = None
        # Stats: how much of the agreement walk the futility check saved.
        self.branches_walked = 0
        self.branches_pruned = 0

    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence[object]],
        num_attributes: Optional[int] = None,
        attribute_names: Optional[Sequence[str]] = None,
    ) -> "IncrementalGordian":
        """Bootstrap by inserting every row (O(T * walk) — fine for tests
        and moderate data; use the batch :func:`repro.core.find_keys` for a
        one-shot discovery on large data)."""
        if num_attributes is None:
            if attribute_names is not None:
                num_attributes = len(attribute_names)
            elif rows:
                num_attributes = len(rows[0])
            else:
                raise DataError("num_attributes required for an empty dataset")
        instance = cls(num_attributes, attribute_names=attribute_names)
        for row in rows:
            instance.insert(row)
        return instance

    # ------------------------------------------------------------------

    def _maximal_agreements(self, entity: Sequence[object]) -> List[int]:
        """Maximal agreement masks between ``entity`` and stored entities.

        Depth-first walk of the prefix tree carrying the agreement mask of
        the path so far; a branch is pruned when even agreeing on *every*
        remaining attribute could not escape coverage by a known non-key.
        """
        collected: List[int] = []
        width = self.num_attributes

        def walk(node: Node, agreement: int) -> None:
            level = node.level
            best_possible = agreement | bitset.suffix_mask(level, width)
            self.branches_walked += 1
            if self.nonkeys.is_covered(best_possible) or any(
                bitset.covers(done, best_possible) for done in collected
            ):
                self.branches_pruned += 1
                return
            for value, cell in node.cells.items():
                bit = bitset.singleton(level) if value == entity[level] else 0
                if cell.child is None:
                    mask = agreement | bit
                    if mask and not any(
                        bitset.covers(done, mask) for done in collected
                    ):
                        collected[:] = [
                            done
                            for done in collected
                            if not bitset.covers(mask, done)
                        ]
                        collected.append(mask)
                else:
                    walk(cell.child, agreement | bit)

        if self.num_entities:
            walk(self.tree.root, bitset.EMPTY)
        return collected

    def insert(self, entity: Sequence[object]) -> InsertReport:
        """Insert one entity, updating the maintained non-keys and keys."""
        if len(entity) != self.num_attributes:
            raise DataError(
                f"entity has {len(entity)} attributes, expected {self.num_attributes}"
            )
        report = InsertReport()
        if self.no_keys_exist:
            # Already keyless; just keep counting.
            try:
                self.tree.insert(entity)
            except NoKeysExistError:
                pass
            self.num_entities += 1
            return report

        agreements = self._maximal_agreements(entity)
        try:
            self.tree.insert(entity)
        except NoKeysExistError:
            self.no_keys_exist = True
            report.became_keyless = True
            self.num_entities += 1
            self._keys_cache = None
            return report
        self.num_entities += 1

        for mask in agreements:
            if self.nonkeys.insert(mask):
                report.new_nonkeys.append(bitset.to_tuple(mask))
        if report.new_nonkeys:
            self._keys_cache = None
        return report

    # ------------------------------------------------------------------

    def key_masks(self) -> List[int]:
        """Current minimal keys as bitmaps (cached between inserts)."""
        if self.no_keys_exist:
            return []
        if self._keys_cache is None:
            self._keys_cache = keys_from_nonkey_masks(
                self.nonkeys.masks(), self.num_attributes
            )
        return list(self._keys_cache)

    def keys(self) -> List[Tuple[int, ...]]:
        """Current minimal keys as attribute-index tuples."""
        return [bitset.to_tuple(mask) for mask in self.key_masks()]

    def named_keys(self) -> List[Tuple[str, ...]]:
        """Current minimal keys as attribute-name tuples."""
        if self.attribute_names is None:
            raise DataError("no attribute names were supplied")
        return [
            tuple(self.attribute_names[i] for i in key) for key in self.keys()
        ]

    def nonkey_tuples(self) -> List[Tuple[int, ...]]:
        """Current maximal non-keys as attribute-index tuples."""
        return [
            bitset.to_tuple(mask) for mask in self.nonkeys.sorted_masks()
        ]

    def is_key(self, attrs: Sequence[int]) -> bool:
        """Whether ``attrs`` is currently a key (superset of none needed)."""
        if self.no_keys_exist:
            return False
        mask = bitset.from_indices(attrs)
        return not self.nonkeys.is_covered(mask)

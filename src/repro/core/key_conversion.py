"""Converting minimal non-keys into minimal keys (paper, section 3.7).

The minimal keys are exactly the minimal attribute sets that intersect the
complement of every non-key (equivalently: the minimal hitting sets /
hypergraph transversals of the complemented non-key family).  Algorithm 6
computes them incrementally: fold the complement set of each non-key into a
running cartesian product, simplifying (dropping redundant supersets) after
every step so the intermediate sets stay small.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core import bitset

__all__ = ["keys_from_nonkeys", "keys_from_nonkey_masks"]


def keys_from_nonkey_masks(nonkeys: Iterable[int], num_attributes: int) -> List[int]:
    """Algorithm 6: derive the minimal keys from a set of non-key bitmaps.

    Parameters
    ----------
    nonkeys:
        Non-key attribute sets.  They need not be minimal — redundant
        entries only cost time, not correctness.
    num_attributes:
        Schema width ``d``; complements are taken within ``{0..d-1}``.

    Returns
    -------
    list of int
        Minimal keys sorted by (size, bits).  Special cases: with no
        non-keys at all, every single attribute is a key; if some non-key
        equals the full attribute set, no key exists and the result is
        empty.
    """
    # Drop redundant (covered) non-keys first; order by decreasing size so
    # the smallest complements are folded in first, keeping intermediate key
    # sets small.
    nonkey_list = sorted(
        bitset.maximize(nonkeys), key=bitset.popcount, reverse=True
    )
    if not nonkey_list:
        # No duplicates anywhere: every single attribute is already a key.
        return [bitset.singleton(i) for i in range(num_attributes)]

    first_complement = bitset.complement(nonkey_list[0], num_attributes)
    key_set: List[int] = [
        bitset.singleton(attr) for attr in bitset.iter_bits(first_complement)
    ]
    for nonkey in nonkey_list[1:]:
        comp = bitset.complement(nonkey, num_attributes)
        # Keys already intersecting the complement hit the new "hyperedge"
        # and survive unchanged; the others must be extended by one
        # complement attribute each (the cartesian-product step of
        # Algorithm 6, restricted to where it can change anything).
        unchanged = [key for key in key_set if key & comp]
        to_extend = [key for key in key_set if not key & comp]
        if not to_extend:
            continue
        # Simplification (Algorithm 6 line 13), sharpened: a candidate
        # c = key ∪ {a} (with key ∩ comp = ∅, a ∈ comp) can only be covered
        # by a kept set whose intersection with comp is exactly {a} — an
        # unchanged key containing a, or an earlier candidate extended by
        # the same a.  So each candidate checks one per-attribute bucket
        # instead of the whole key set.
        comp_attrs = list(bitset.iter_bits(comp))
        buckets = {
            attr: [key for key in unchanged if key >> attr & 1]
            for attr in comp_attrs
        }
        key_set = list(unchanged)
        # Candidates must be processed smallest-first so a subset is kept
        # before any superset is examined; every extension adds exactly one
        # attribute, so sorting the bases by size is enough.
        to_extend.sort(key=bitset.popcount)
        for base in to_extend:
            for attr in comp_attrs:
                candidate = base | 1 << attr
                bucket = buckets[attr]
                if not any(kept & ~candidate == 0 for kept in bucket):
                    key_set.append(candidate)
                    bucket.append(candidate)
    return sorted(key_set, key=lambda m: (bitset.popcount(m), m))


def keys_from_nonkeys(
    nonkeys: Iterable[Sequence[int]], num_attributes: int
) -> List[List[int]]:
    """Index-tuple convenience wrapper around :func:`keys_from_nonkey_masks`."""
    masks = [bitset.from_indices(nk) for nk in nonkeys]
    return [
        bitset.to_indices(mask)
        for mask in keys_from_nonkey_masks(masks, num_attributes)
    ]

"""The NonKeySet container (paper, section 3.6 / Algorithm 5).

Holds a *non-redundant* collection of non-keys: no stored non-key is a
subset of another.  Non-keys are attribute-set bitmaps (see
:mod:`repro.core.bitset`).  Insertion first checks whether an existing
non-key covers the newcomer (then the newcomer is redundant and dropped),
and otherwise evicts every stored non-key the newcomer covers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.core import bitset

__all__ = ["NonKeySet"]


class NonKeySet:
    """Container of mutually non-redundant non-keys.

    The container also answers the futility-pruning query: *is every subset
    of a given attribute set already covered?* — which reduces to "is the
    attribute set itself covered by some stored non-key".
    """

    def __init__(self, num_attributes: int, initial: Optional[Sequence[int]] = None):
        if num_attributes < 1:
            raise ValueError("num_attributes must be >= 1")
        self.num_attributes = num_attributes
        self._nonkeys: List[int] = []
        self.insert_attempts = 0
        self.insert_accepted = 0
        if initial:
            for mask in initial:
                self.insert(mask)

    def __len__(self) -> int:
        return len(self._nonkeys)

    def __iter__(self) -> Iterator[int]:
        return iter(self._nonkeys)

    def __contains__(self, mask: int) -> bool:
        return mask in self._nonkeys

    def masks(self) -> List[int]:
        """Return the stored non-keys as a list of bitmaps (copy)."""
        return list(self._nonkeys)

    def insert(self, nonkey: int) -> bool:
        """Insert a non-key, keeping the container non-redundant (Alg. 5).

        Returns ``True`` when the non-key was stored, ``False`` when an
        already-stored non-key covers it.
        """
        if nonkey < 0 or nonkey > bitset.full_mask(self.num_attributes):
            raise ValueError(
                f"non-key {nonkey:#x} is outside the {self.num_attributes}-attribute schema"
            )
        self.insert_attempts += 1
        # First pass: is the newcomer covered by (redundant to) a stored one?
        for stored in self._nonkeys:
            if bitset.covers(stored, nonkey):
                return False
        # Second pass: evict stored non-keys the newcomer covers, then add.
        self._nonkeys = [
            stored for stored in self._nonkeys if not bitset.covers(nonkey, stored)
        ]
        self._nonkeys.append(nonkey)
        self.insert_accepted += 1
        return True

    def is_covered(self, mask: int) -> bool:
        """True iff some stored non-key covers ``mask``.

        This is the futility test (Algorithm 4, line 24): a merge at tree
        level ``l`` with current candidate ``c`` can only discover non-keys
        that are subsets of ``c | suffix_mask(l)``; if that union is covered
        here, the whole merge-and-traverse is futile.
        """
        return any(bitset.covers(stored, mask) for stored in self._nonkeys)

    def is_non_redundant(self) -> bool:
        """Invariant check used by tests: the container is an antichain."""
        return bitset.is_minimal_family(self._nonkeys)

    def sorted_masks(self) -> List[int]:
        """Stored non-keys sorted by (size, bits) for deterministic output."""
        return sorted(self._nonkeys, key=lambda m: (bitset.popcount(m), m))

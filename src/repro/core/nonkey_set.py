"""The NonKeySet container (paper, section 3.6 / Algorithm 5).

Holds a *non-redundant* collection of non-keys: no stored non-key is a
subset of another.  Non-keys are attribute-set bitmaps (see
:mod:`repro.core.bitset`).  Insertion first checks whether an existing
non-key covers the newcomer (then the newcomer is redundant and dropped),
and otherwise evicts every stored non-key the newcomer covers.

The covering scans are the hottest loops in the whole pipeline, so they
can route through the packed-bitmap kernels in
:mod:`repro.perf.bitset` (numpy ``uint64`` planes, one batched AND per
scan) — controlled by the ``vectorize`` argument, defaulting to "use the
kernel when numpy is available".  The kernel is exact, so every verdict,
eviction, and stored mask is identical in all modes; the equivalence and
property suites assert exactly that.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.core import bitset

__all__ = ["NonKeySet"]

# Below this many masks (or stored entries) the batched union prefilter
# costs more in packing than it saves in scans; small unions keep the plain
# per-mask insert loop.
_UNION_BATCH_MIN = 16


class NonKeySet:
    """Container of mutually non-redundant non-keys.

    The container also answers the futility-pruning query: *is every subset
    of a given attribute set already covered?* — which reduces to "is the
    attribute set itself covered by some stored non-key".

    ``vectorize`` selects the scan implementation: ``None`` (default) uses
    the packed numpy kernel when numpy is importable, ``True`` forces a
    kernel (pure-Python packed fallback without numpy), ``False`` keeps the
    original inline loops.  Results are identical in every mode.
    """

    def __init__(
        self,
        num_attributes: int,
        initial: Optional[Sequence[int]] = None,
        vectorize: Optional[bool] = None,
    ):
        if num_attributes < 1:
            raise ValueError("num_attributes must be >= 1")
        self.num_attributes = num_attributes
        self._full_mask = bitset.full_mask(num_attributes)
        # Complement of each stored non-key, kept in lockstep with
        # ``_nonkeys``: ``mask & complement == 0`` means "covered", and
        # precomputing the complements keeps the covering scans below to one
        # AND per stored mask.  The futility query runs once per interior
        # node of the traversal, so this loop is among the hottest in the
        # whole pipeline.  Both lists stay sorted by ascending complement
        # popcount (``_comp_sizes``) — i.e. largest non-keys first — because
        # the largest non-keys cover the most queries, so covered queries
        # exit after probing only a short prefix of the antichain.
        self._nonkeys: List[int] = []
        self._complements: List[int] = []
        self._comp_sizes: List[int] = []
        # Packed mirror of the two scan columns (or None for inline loops).
        # The lists above stay the source of truth — snapshots, iteration,
        # and checkpoints read them — and every mutation below updates the
        # mirror in the same step, so the two can never disagree.
        from repro.perf.bitset import make_kernel

        self._kernel = make_kernel(num_attributes, vectorize)
        # Verdict memo for :meth:`is_covered`.  The futility query stream
        # is massively repetitive (the same ``candidate | suffix`` masks
        # recur across sibling subtrees), and coverage only ever *grows* —
        # an insert adds coverage and evicts only subsets of the newcomer —
        # so positive verdicts hold forever, while negative verdicts hold
        # until the next accepted insert.
        self._covered_memo: set = set()
        self._uncovered_memo: set = set()
        self.insert_attempts = 0
        self.insert_accepted = 0
        if initial:
            for mask in initial:
                self.insert(mask)

    def __len__(self) -> int:
        return len(self._nonkeys)

    def __iter__(self) -> Iterator[int]:
        return iter(self._nonkeys)

    def __contains__(self, mask: int) -> bool:
        return mask in self._nonkeys

    def masks(self) -> List[int]:
        """Return the stored non-keys as a list of bitmaps (copy)."""
        return list(self._nonkeys)

    def insert(self, nonkey: int) -> bool:
        """Insert a non-key, keeping the container non-redundant (Alg. 5).

        Returns ``True`` when the non-key was stored, ``False`` when an
        already-stored non-key covers it.
        """
        if nonkey < 0 or nonkey > self._full_mask:
            raise ValueError(
                f"non-key {nonkey:#x} is outside the {self.num_attributes}-attribute schema"
            )
        self.insert_attempts += 1
        # First pass: is the newcomer covered by (redundant to) a stored one?
        # Only strictly larger non-keys can cover it, and those occupy a
        # prefix of the size-sorted lists.
        inverse = self._full_mask & ~nonkey
        size = inverse.bit_count()
        cut = bisect_right(self._comp_sizes, size)
        kernel = self._kernel
        if kernel is not None:
            if kernel.any_covering(nonkey, cut):
                return False
            # Second pass: evict stored non-keys the newcomer covers (all of
            # them strictly smaller, hence past ``cut``), then insert at the
            # sorted position.
            evict = kernel.covered_indices(inverse, cut)
        else:
            for complement in self._complements[:cut]:
                if nonkey & complement == 0:
                    return False
            evict = [
                index
                for index in range(cut, len(self._nonkeys))
                if not self._nonkeys[index] & inverse
            ]
        for index in reversed(evict):
            del self._nonkeys[index]
            del self._complements[index]
            del self._comp_sizes[index]
        self._nonkeys.insert(cut, nonkey)
        self._complements.insert(cut, inverse)
        self._comp_sizes.insert(cut, size)
        if kernel is not None:
            kernel.delete(evict)
            kernel.insert(cut, nonkey, inverse)
        if self._uncovered_memo:
            self._uncovered_memo = set()
        self.insert_accepted += 1
        return True

    @classmethod
    def from_antichain(
        cls,
        num_attributes: int,
        masks: Sequence[int],
        vectorize: Optional[bool] = None,
    ) -> "NonKeySet":
        """Bulk-load masks the caller *guarantees* are mutually non-redundant.

        Skips the per-insert covering scans, so seeding a worker task's
        NonKeySet from a parent snapshot is linear instead of quadratic.
        The parent's :meth:`masks` output qualifies (it is the stored
        antichain), and so does any prefix of it — the lists are re-sorted
        by complement popcount here to restore the scan-order invariant.
        """
        self = cls(num_attributes, vectorize=vectorize)
        full = self._full_mask
        entries = sorted(
            ((full & ~mask).bit_count(), mask) for mask in masks
        )
        for size, mask in entries:
            self._nonkeys.append(mask)
            self._complements.append(full & ~mask)
            self._comp_sizes.append(size)
        if self._kernel is not None:
            self._kernel.rebuild(self._nonkeys, self._complements)
        return self

    def union(self, masks: Iterable[int]) -> int:
        """Insert every mask, re-minimizing as usual; returns how many were
        kept.

        This is how the parallel backend folds worker results back in
        (Algorithm 5 semantics): each worker returns the non-keys of its
        slice, the union re-establishes the global antichain, and arrival
        order cannot change the outcome — subsets are dropped and covered
        entries evicted no matter which side arrives first.  Empty masks
        are skipped (see ``NonKeyFinder._add_nonkey`` for why they carry no
        information).

        Large batches against a large antichain first run one batched cover
        scan (:meth:`~repro.perf.bitset.PackedAntichain.covered_flags`) and
        drop the already-covered masks before the sequential inserts.  The
        prefilter is exact: coverage is monotone under insertion (an insert
        only adds a mask, and anything it evicts is a subset of it), so a
        mask covered *now* would also be rejected by its later ``insert``.
        Counters stay identical — a prefiltered mask is charged the same
        ``insert_attempts`` tick its rejected insert would have charged.
        """
        accepted = 0
        masks = [mask for mask in masks if mask]
        kernel = self._kernel
        if (
            kernel is not None
            and len(masks) >= _UNION_BATCH_MIN
            and len(self._nonkeys) >= _UNION_BATCH_MIN
            and all(0 <= mask <= self._full_mask for mask in masks)
        ):
            flags = kernel.covered_flags(masks)
            survivors = []
            for mask, covered in zip(masks, flags):
                if covered:
                    self.insert_attempts += 1
                else:
                    survivors.append(mask)
            masks = survivors
        for mask in masks:
            if self.insert(mask):
                accepted += 1
        return accepted

    def is_covered(self, mask: int) -> bool:
        """True iff some stored non-key covers ``mask``.

        This is the futility test (Algorithm 4, line 24): a merge at tree
        level ``l`` with current candidate ``c`` can only discover non-keys
        that are subsets of ``c | suffix_mask(l)``; if that union is covered
        here, the whole merge-and-traverse is futile.

        A covering non-key must be at least as large as ``mask``, so only
        the size-sorted prefix up to the query's own size needs scanning —
        and repeat queries are answered from the verdict memo without
        scanning at all.
        """
        if mask in self._covered_memo:
            return True
        if mask in self._uncovered_memo:
            return False
        size = (self._full_mask & ~mask).bit_count()
        cut = bisect_right(self._comp_sizes, size)
        kernel = self._kernel
        if kernel is not None:
            if kernel.any_covering(mask, cut):
                self._covered_memo.add(mask)
                return True
        else:
            for complement in self._complements[:cut]:
                if mask & complement == 0:
                    self._covered_memo.add(mask)
                    return True
        self._uncovered_memo.add(mask)
        return False

    def is_non_redundant(self) -> bool:
        """Invariant check used by tests: the container is an antichain."""
        return bitset.is_minimal_family(self._nonkeys)

    def sorted_masks(self) -> List[int]:
        """Stored non-keys sorted by (size, bits) for deterministic output."""
        return sorted(self._nonkeys, key=lambda m: (bitset.popcount(m), m))

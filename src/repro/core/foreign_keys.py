"""Foreign-key suggestion — the paper's stated future work (section 6).

"We plan to extend our approach to permit identification of foreign-key
relationships, thereby automating the discovery of full entity-relationship
diagrams."  This module implements the natural first step on top of GORDIAN:
for every discovered key of every table, test which column groups of the
other tables are *inclusion dependencies* into that key (every referencing
combination appears among the key's values), and score the candidates by
coverage so near-miss relationships (dirty data) can still be surfaced.

This is an extension beyond the paper's evaluated contribution; it reuses
GORDIAN's keys as the referenced side, exactly as the paper sketches.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.gordian import GordianConfig
from repro.dataset.table import Table

__all__ = ["ForeignKeyCandidate", "inclusion_coverage", "suggest_foreign_keys"]


@dataclass(frozen=True)
class ForeignKeyCandidate:
    """A suggested foreign-key relationship between two tables."""

    from_table: str
    from_attributes: Tuple[str, ...]
    to_table: str
    to_attributes: Tuple[str, ...]
    #: Fraction of referencing combinations found among the key's values.
    coverage: float

    @property
    def is_exact(self) -> bool:
        return self.coverage >= 1.0

    def render(self) -> str:
        src = ", ".join(self.from_attributes)
        dst = ", ".join(self.to_attributes)
        marker = "" if self.is_exact else f"  -- coverage {self.coverage:.1%}"
        return (
            f"{self.from_table}({src}) -> {self.to_table}({dst}){marker}"
        )


def inclusion_coverage(
    referencing: Table,
    from_attributes: Sequence[str],
    referenced: Table,
    to_attributes: Sequence[str],
) -> float:
    """Fraction of distinct referencing combinations present in the target.

    1.0 is an exact inclusion dependency; values just below 1.0 usually
    indicate a real relationship with dirty rows.
    """
    source = {
        row
        for row in referencing.project(from_attributes, distinct=True).rows
    }
    if not source:
        return 1.0
    target = set(referenced.project(to_attributes, distinct=True).rows)
    hit = sum(1 for combo in source if combo in target)
    return hit / len(source)


def _name_compatible(from_name: str, to_name: str) -> bool:
    """Cheap name heuristic: suffix match after stripping common prefixes.

    TPC-H style schemas prefix columns with a table letter (``l_orderkey``
    vs ``o_orderkey``); comparing the underscore-stripped tails links them.
    """
    def tail(name: str) -> str:
        return name.split("_", 1)[-1].lower() if "_" in name else name.lower()

    return tail(from_name) == tail(to_name)


def suggest_foreign_keys(
    tables: Dict[str, Table],
    min_coverage: float = 1.0,
    max_key_arity: int = 2,
    require_name_match: bool = False,
    keys_by_table: Optional[Dict[str, List[Tuple[int, ...]]]] = None,
    config: Optional[GordianConfig] = None,
) -> List[ForeignKeyCandidate]:
    """Suggest foreign keys across a database.

    Parameters
    ----------
    tables:
        ``{name: Table}`` — the database.
    min_coverage:
        Report candidates whose inclusion coverage reaches this threshold
        (1.0 = exact inclusion dependencies only).
    max_key_arity:
        Only keys with at most this many attributes are considered as
        referenced sides (wide keys make meaningless FK targets).
    require_name_match:
        Additionally require each attribute pair to pass the name
        heuristic; cuts coincidental inclusions on small data.
    keys_by_table:
        Precomputed GORDIAN keys per table (attribute-index tuples); when
        omitted, GORDIAN runs on every table.
    """
    if not 0.0 < min_coverage <= 1.0:
        raise ValueError("min_coverage must be in (0, 1]")
    if keys_by_table is None:
        keys_by_table = {}
        for name, table in tables.items():
            result = table.find_keys(config=config)
            keys_by_table[name] = [] if result.no_keys_exist else result.keys

    candidates: List[ForeignKeyCandidate] = []
    for to_name, to_table in tables.items():
        for key in keys_by_table.get(to_name, []):
            if len(key) > max_key_arity:
                continue
            to_attrs = tuple(to_table.schema.names[i] for i in key)
            for from_name, from_table in tables.items():
                if from_name == to_name:
                    continue
                candidates.extend(
                    _match_key(
                        from_name,
                        from_table,
                        to_name,
                        to_table,
                        to_attrs,
                        min_coverage,
                        require_name_match,
                    )
                )
    candidates.sort(
        key=lambda c: (-c.coverage, c.from_table, c.from_attributes)
    )
    return candidates


def _match_key(
    from_name: str,
    from_table: Table,
    to_name: str,
    to_table: Table,
    to_attrs: Tuple[str, ...],
    min_coverage: float,
    require_name_match: bool,
) -> Iterable[ForeignKeyCandidate]:
    """All column groups of ``from_table`` referencing one key."""
    arity = len(to_attrs)
    names = from_table.schema.names
    results: List[ForeignKeyCandidate] = []
    for combo in permutations(names, arity):
        if require_name_match and not all(
            _name_compatible(f, t) for f, t in zip(combo, to_attrs)
        ):
            continue
        coverage = inclusion_coverage(from_table, combo, to_table, to_attrs)
        if coverage >= min_coverage:
            results.append(
                ForeignKeyCandidate(
                    from_table=from_name,
                    from_attributes=tuple(combo),
                    to_table=to_name,
                    to_attributes=to_attrs,
                    coverage=coverage,
                )
            )
    return results

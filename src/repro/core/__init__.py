"""GORDIAN core: prefix tree, NonKeyFinder, non-key container, key conversion.

The public entry point is :func:`repro.core.find_keys`; the submodules expose
the paper's individual algorithms for direct use and testing.
"""

from repro.core.approximate import (
    ApproximateKey,
    ApproximateKeyResult,
    find_approximate_keys,
)
from repro.core.explain import Trace, TraceEvent, render_trace, trace_nonkey_finder
from repro.core.foreign_keys import (
    ForeignKeyCandidate,
    inclusion_coverage,
    suggest_foreign_keys,
)
from repro.core.gordian import (
    AttributeOrder,
    GordianConfig,
    GordianResult,
    RobustKeyResult,
    find_keys,
    find_keys_robust,
    run_with_budget,
)
from repro.core.incremental import IncrementalGordian, InsertReport
from repro.core.key_conversion import keys_from_nonkey_masks, keys_from_nonkeys
from repro.core.merge import merge_children, merge_nodes
from repro.core.nonkey_finder import NonKeyFinder, PruningConfig, find_nonkeys
from repro.core.nonkey_set import NonKeySet
from repro.core.prefix_tree import Cell, Node, PrefixTree, build_prefix_tree
from repro.core.strength import (
    KeyStrength,
    bayesian_strength_bound,
    classify_keys,
    distinct_count,
    kivinen_mannila_sample_size,
    strength,
)

__all__ = [
    "ApproximateKey",
    "ApproximateKeyResult",
    "find_approximate_keys",
    "Trace",
    "TraceEvent",
    "render_trace",
    "trace_nonkey_finder",
    "ForeignKeyCandidate",
    "inclusion_coverage",
    "suggest_foreign_keys",
    "IncrementalGordian",
    "InsertReport",
    "AttributeOrder",
    "GordianConfig",
    "GordianResult",
    "RobustKeyResult",
    "find_keys",
    "find_keys_robust",
    "run_with_budget",
    "keys_from_nonkey_masks",
    "keys_from_nonkeys",
    "merge_children",
    "merge_nodes",
    "NonKeyFinder",
    "PruningConfig",
    "find_nonkeys",
    "NonKeySet",
    "Cell",
    "Node",
    "PrefixTree",
    "build_prefix_tree",
    "KeyStrength",
    "bayesian_strength_bound",
    "classify_keys",
    "distinct_count",
    "kivinen_mannila_sample_size",
    "strength",
]

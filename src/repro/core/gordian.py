"""Top-level GORDIAN driver (Figure 2 of the paper).

The pipeline is: (1) compress the dataset into a prefix tree in one pass,
(2) run NonKeyFinder — the interleaved cube computation with non-key
discovery and pruning, (3) convert the minimal non-keys into minimal keys.

The driver also owns the attribute-ordering heuristic (section 3.2.1: "one
heuristic is to process attributes in descending order of their cardinality
in the dataset, in order to maximize the amount of pruning at lower levels
of the prefix tree") and translates all reported attribute sets back to the
caller's original attribute numbering.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple

from repro.core import bitset
from repro.core.key_conversion import keys_from_nonkey_masks
from repro.core.nonkey_finder import NonKeyFinder, PruningConfig
from repro.core.prefix_tree import build_prefix_tree
from repro.core.stats import RunStats
from repro.errors import ConfigError, DataError, NoKeysExistError

__all__ = ["AttributeOrder", "GordianConfig", "GordianResult", "find_keys"]


class AttributeOrder(str, Enum):
    """Attribute-to-tree-level assignment strategies."""

    #: Keep the schema order (no reordering).
    SCHEMA = "schema"
    #: Descending cardinality — the paper's recommended heuristic.
    CARDINALITY_DESC = "cardinality_desc"
    #: Ascending cardinality — the anti-heuristic, kept for the ablation.
    CARDINALITY_ASC = "cardinality_asc"


@dataclass(frozen=True)
class GordianConfig:
    """Knobs for one GORDIAN run.

    ``null_policy`` controls how ``None`` values behave (see
    :mod:`repro.dataset.nulls`): ``"equal"`` (default — NULL is one more
    domain value), ``"distinct"`` (SQL UNIQUE semantics), or ``"forbid"``.
    """

    pruning: PruningConfig = field(default_factory=PruningConfig)
    attribute_order: AttributeOrder = AttributeOrder.CARDINALITY_DESC
    null_policy: str = "equal"

    def __post_init__(self) -> None:
        if not isinstance(self.attribute_order, AttributeOrder):
            try:
                object.__setattr__(
                    self, "attribute_order", AttributeOrder(self.attribute_order)
                )
            except ValueError as exc:
                raise ConfigError(f"unknown attribute order: {self.attribute_order!r}") from exc
        from repro.dataset.nulls import NullPolicy

        if not isinstance(self.null_policy, NullPolicy):
            try:
                object.__setattr__(
                    self, "null_policy", NullPolicy(self.null_policy)
                )
            except ValueError as exc:
                raise ConfigError(f"unknown null policy: {self.null_policy!r}") from exc


@dataclass
class GordianResult:
    """Everything a GORDIAN run produces.

    ``keys`` and ``nonkeys`` are lists of attribute-index tuples in the
    *original* schema numbering, sorted by (arity, indices).  When the
    dataset contains duplicate entities, ``no_keys_exist`` is true and
    ``keys`` is empty (the prefix-tree build aborted early, per Algorithm 2).
    """

    keys: List[Tuple[int, ...]]
    nonkeys: List[Tuple[int, ...]]
    num_attributes: int
    num_entities: int
    no_keys_exist: bool
    attribute_order: List[int]
    stats: RunStats
    attribute_names: Optional[List[str]] = None

    @property
    def key_masks(self) -> List[int]:
        return [bitset.from_indices(key) for key in self.keys]

    @property
    def nonkey_masks(self) -> List[int]:
        return [bitset.from_indices(nk) for nk in self.nonkeys]

    def named_keys(self) -> List[Tuple[str, ...]]:
        """Keys as attribute-name tuples (requires ``attribute_names``)."""
        if self.attribute_names is None:
            raise DataError("no attribute names were supplied to find_keys")
        return [tuple(self.attribute_names[i] for i in key) for key in self.keys]

    def named_nonkeys(self) -> List[Tuple[str, ...]]:
        """Minimal non-keys as attribute-name tuples."""
        if self.attribute_names is None:
            raise DataError("no attribute names were supplied to find_keys")
        return [tuple(self.attribute_names[i] for i in nk) for nk in self.nonkeys]

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        if self.no_keys_exist:
            return (
                f"GORDIAN: dataset of {self.num_entities} entities has duplicate "
                "entities — no keys exist."
            )
        names = self.attribute_names or [f"a{i}" for i in range(self.num_attributes)]
        keys = ", ".join(
            bitset.format_attrset(mask, names) for mask in self.key_masks
        ) or "(none)"
        return (
            f"GORDIAN: {len(self.keys)} minimal key(s) over {self.num_entities} "
            f"entities x {self.num_attributes} attributes in "
            f"{self.stats.total_seconds:.4f}s: {keys}"
        )


def _order_attributes(
    rows: Sequence[Sequence[object]],
    num_attributes: int,
    order: AttributeOrder,
) -> List[int]:
    """Return ``level_to_attr``: the original attribute at each tree level."""
    if order is AttributeOrder.SCHEMA or not rows:
        return list(range(num_attributes))
    cardinalities = [len({row[a] for row in rows}) for a in range(num_attributes)]
    reverse = order is AttributeOrder.CARDINALITY_DESC
    # Stable sort keeps schema order among ties, so results are deterministic.
    return sorted(
        range(num_attributes), key=lambda a: cardinalities[a], reverse=reverse
    )


def find_keys(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    attribute_names: Optional[Sequence[str]] = None,
    config: Optional[GordianConfig] = None,
) -> GordianResult:
    """Discover all minimal (composite) keys of a collection of entities.

    Parameters
    ----------
    rows:
        The entities; each row is an indexable sequence of hashable values.
    num_attributes:
        Schema width.  Defaults to ``len(attribute_names)`` or the width of
        the first row.
    attribute_names:
        Optional names used in human-readable output.
    config:
        Pruning switches and the attribute-ordering heuristic.

    Returns
    -------
    GordianResult
        Minimal keys and minimal non-keys in original attribute numbering.
    """
    config = config or GordianConfig()
    if num_attributes is None:
        if attribute_names is not None:
            num_attributes = len(attribute_names)
        elif rows:
            num_attributes = len(rows[0])
        else:
            raise DataError(
                "num_attributes (or attribute_names) is required for an empty dataset"
            )
    if attribute_names is not None and len(attribute_names) != num_attributes:
        raise DataError(
            f"{len(attribute_names)} attribute names for {num_attributes} attributes"
        )
    if num_attributes < 1:
        raise DataError("a dataset needs at least one attribute")
    for i, row in enumerate(rows):
        if len(row) != num_attributes:
            raise DataError(
                f"row {i} has {len(row)} attributes, expected {num_attributes}"
            )

    from repro.dataset.nulls import NullPolicy, apply_null_policy

    if config.null_policy is not NullPolicy.EQUAL:
        rows = apply_null_policy(rows, config.null_policy)

    stats = RunStats()
    level_to_attr = _order_attributes(rows, num_attributes, config.attribute_order)

    build_start = time.perf_counter()
    try:
        tree = build_prefix_tree(
            ([row[a] for a in level_to_attr] for row in rows),
            num_attributes,
            stats=stats.tree,
        )
    except NoKeysExistError:
        stats.build_seconds = time.perf_counter() - build_start
        return GordianResult(
            keys=[],
            nonkeys=[tuple(range(num_attributes))],
            num_attributes=num_attributes,
            num_entities=len(rows),
            no_keys_exist=True,
            attribute_order=level_to_attr,
            stats=stats,
            attribute_names=list(attribute_names) if attribute_names else None,
        )
    stats.build_seconds = time.perf_counter() - build_start

    search_start = time.perf_counter()
    finder = NonKeyFinder(tree, pruning=config.pruning, stats=stats.search)
    nonkey_set = finder.run()
    stats.search_seconds = time.perf_counter() - search_start

    convert_start = time.perf_counter()
    key_masks = keys_from_nonkey_masks(nonkey_set.masks(), num_attributes)
    stats.convert_seconds = time.perf_counter() - convert_start

    def translate(mask: int) -> Tuple[int, ...]:
        return tuple(sorted(level_to_attr[level] for level in bitset.iter_bits(mask)))

    keys = sorted((translate(mask) for mask in key_masks), key=lambda k: (len(k), k))
    nonkeys = sorted(
        (translate(mask) for mask in nonkey_set.masks()), key=lambda k: (len(k), k)
    )
    return GordianResult(
        keys=keys,
        nonkeys=nonkeys,
        num_attributes=num_attributes,
        num_entities=len(rows),
        no_keys_exist=False,
        attribute_order=level_to_attr,
        stats=stats,
        attribute_names=list(attribute_names) if attribute_names else None,
    )

"""Top-level GORDIAN driver (Figure 2 of the paper).

The pipeline is: (1) compress the dataset into a prefix tree in one pass,
(2) run NonKeyFinder — the interleaved cube computation with non-key
discovery and pruning, (3) convert the minimal non-keys into minimal keys.

The driver also owns the attribute-ordering heuristic (section 3.2.1: "one
heuristic is to process attributes in descending order of their cardinality
in the dataset, in order to maximize the amount of pruning at lower levels
of the prefix tree") and translates all reported attribute sets back to the
caller's original attribute numbering.

Three entry points share the pipeline:

* :func:`find_keys` — the exact, unbudgeted run;
* :func:`run_with_budget` — the exact run under a
  :class:`~repro.robustness.RunBudget`, raising a salvage-carrying
  :class:`~repro.errors.BudgetExceededError` when a limit trips;
* :func:`find_keys_robust` — never raises on resource exhaustion: it
  catches the budget trip (or a ``KeyboardInterrupt``), keeps the partial
  NonKeySet, and degrades to the paper's sampling mode (section 3.9),
  returning approximate keys annotated with the Bayesian strength lower
  bound ``T(K)``.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence, Tuple, Union

from repro.core import bitset
from repro.core.key_conversion import keys_from_nonkey_masks
from repro.core.nonkey_finder import NonKeyFinder, PruningConfig
from repro.core.prefix_tree import build_prefix_tree
from repro.core.stats import RunStats, measure_peak_rss_kb
from repro.errors import (
    BudgetExceededError,
    ConfigError,
    DataError,
    NoKeysExistError,
    WorkerFailureError,
)
from repro.robustness import BudgetMeter, RunBudget

__all__ = [
    "AttributeOrder",
    "GordianConfig",
    "GordianResult",
    "RobustKeyResult",
    "find_keys",
    "find_keys_robust",
    "run_with_budget",
    "degraded_result_from_failure",
    "DEFAULT_FALLBACK_SAMPLE_SIZES",
]

_logger = logging.getLogger(__name__)

#: Below this many cache probes the hit rate is statistically meaningless,
#: so the low-hit-rate warning stays quiet (tiny datasets, unit tests).
MERGE_CACHE_WARN_MIN_PROBES = 1024
#: Hit rates under this fraction mean the cache is burning memory and probe
#: time for nothing; the user should hear about it once per run.
MERGE_CACHE_WARN_RATE = 0.10


def _warn_low_merge_cache_rate(
    search, min_probes: int = MERGE_CACHE_WARN_MIN_PROBES
) -> bool:
    """Log a one-line warning when the merge cache is ineffective.

    Returns whether the warning fired (tests hook this).  BENCH_core.json
    shows ~3% on the keyplant workload at the default caps — users tuning
    for speed should know the cache is contributing little there.

    When the cache already *acted* on the low rate (its autotune pass
    disabled it mid-run, see :class:`~repro.perf.merge_cache.MergeCache`),
    there is nothing left for the user to tune, so the note is demoted to
    info level.
    """
    probes = search.merge_cache_hits + search.merge_cache_misses
    if probes < min_probes or search.merge_cache_hit_rate >= MERGE_CACHE_WARN_RATE:
        return False
    if search.merge_cache_autodisables:
        _logger.info(
            "merge cache hit rate %.1f%% (%d/%d) was below %.0f%%; the cache "
            "disabled itself for the remainder of the run (no action needed)",
            100.0 * search.merge_cache_hit_rate,
            search.merge_cache_hits,
            probes,
            100.0 * MERGE_CACHE_WARN_RATE,
        )
        return False
    _logger.warning(
        "merge cache hit rate %.1f%% (%d/%d) is below %.0f%%: the cache is "
        "ineffective on this workload at the current caps; consider "
        "--no-merge-cache or a larger merge_cache_entries",
        100.0 * search.merge_cache_hit_rate,
        search.merge_cache_hits,
        probes,
        100.0 * MERGE_CACHE_WARN_RATE,
    )
    return True


class AttributeOrder(str, Enum):
    """Attribute-to-tree-level assignment strategies."""

    #: Keep the schema order (no reordering).
    SCHEMA = "schema"
    #: Descending cardinality — the paper's recommended heuristic.
    CARDINALITY_DESC = "cardinality_desc"
    #: Ascending cardinality — the anti-heuristic, kept for the ablation.
    CARDINALITY_ASC = "cardinality_asc"


@dataclass(frozen=True)
class GordianConfig:
    """Knobs for one GORDIAN run.

    ``null_policy`` controls how ``None`` values behave (see
    :mod:`repro.dataset.nulls`): ``"equal"`` (default — NULL is one more
    domain value), ``"distinct"`` (SQL UNIQUE semantics), or ``"forbid"``.

    The performance layer is on by default and changes no answer, only the
    constants: ``encode`` dictionary-encodes every column to dense integer
    codes before tree construction (decode tables ride along on the
    result), and ``merge_cache`` memoizes repeated segment merges during
    the traversal (bounded by ``merge_cache_entries`` and, under a
    budgeted run, by the memory budget).  ``vectorize`` routes the
    NonKeySet antichain scans through the packed-bitmap kernel
    (:mod:`repro.perf.bitset` — numpy when available, a pure-Python packed
    fallback otherwise); the kernel is exact, so every verdict and stored
    mask is identical either way.  All three can be switched off to
    reproduce the unoptimized baseline.

    ``workers`` selects the execution backend: ``1`` (the default) is the
    serial pipeline, bit for bit as before; ``workers > 1`` shards the
    tree build and fans the NonKeyFinder traversal out to a process pool
    (:mod:`repro.parallel`), discovering identical keys and non-keys.
    Requests beyond the usable CPU count are clamped with a warning unless
    ``clamp_workers`` is off (benchmarks deliberately oversubscribe), and
    datasets under ``parallel_min_rows`` rows always run serially — pool
    startup would dominate.  ``parallel_build_min_rows`` is the same
    threshold for the sharded build specifically, whose freeze/thaw
    round-trips have a higher break-even point.  Parallel execution
    requires ``encode`` (the shared-memory row buffers hold dense codes);
    with ``encode=False`` the run falls back to serial with a warning.

    The supervision knobs govern fault tolerance in parallel runs (see
    :mod:`repro.parallel.supervisor`): a failed task is re-dispatched up to
    ``max_task_retries`` times, a task running longer than
    ``task_timeout_seconds`` is treated as hung (the pool is killed and
    restarted, up to ``max_pool_restarts`` times per run), and
    ``serial_fallback`` lets exhausted tasks run in the parent so the run
    still completes exactly; switching it off makes exhaustion raise
    :class:`~repro.errors.WorkerFailureError` instead (degradation path).
    ``reuse_pool`` borrows the process-wide warm pool
    (:func:`repro.parallel.shared_pool`) instead of creating and tearing
    down a pool per call — repeated discovery runs then pay worker startup
    once.
    """

    pruning: PruningConfig = field(default_factory=PruningConfig)
    attribute_order: AttributeOrder = AttributeOrder.CARDINALITY_DESC
    null_policy: str = "equal"
    encode: bool = True
    merge_cache: bool = True
    merge_cache_entries: int = 4096
    vectorize: bool = True
    #: Mid-flight futility exchange between workers (parallel runs only):
    #: a small shared-memory digest of discovered non-keys, drained before
    #: each slice and appended to after it (:mod:`repro.parallel.futility`).
    #: Advisory — every message is a genuine non-key, so losing or
    #: disabling the exchange changes pruning opportunities, never answers.
    futility_exchange: bool = True
    workers: int = 1
    clamp_workers: bool = True
    parallel_min_rows: int = 256
    parallel_build_min_rows: int = 4096
    max_task_retries: int = 2
    task_timeout_seconds: Optional[float] = None
    serial_fallback: bool = True
    max_pool_restarts: int = 2
    reuse_pool: bool = False
    #: Adaptive work-packet sizing (parallel runs only): the scheduler
    #: retargets the per-dispatch packet weight so observed in-worker
    #: packet latency tracks this target.  Pure scheduling — results are
    #: bit-identical at any value.  ``None``/``0`` keeps the static
    #: ``entities/(workers*8)`` heuristic.
    target_packet_ms: Optional[float] = 250.0
    #: Durable checkpoint/resume (:mod:`repro.checkpoint`): a directory
    #: enables it, ``checkpoint_interval_seconds`` sets the periodic write
    #: cadence (0 = checkpoint at every opportunity), ``checkpoint_keep``
    #: how many generations survive rotation.
    #: ``checkpoint_interval_visits`` adds a progress-based cadence on top
    #: of the wall clock: a checkpoint also becomes due every N search
    #: visits (or build rows), bounding the *work* a crash can replay, not
    #: just the time since the last write.  ``None`` disables it.
    checkpoint_dir: Optional[str] = None
    checkpoint_interval_seconds: float = 30.0
    checkpoint_interval_visits: Optional[int] = None
    checkpoint_keep: int = 3

    def __post_init__(self) -> None:
        if self.merge_cache and self.merge_cache_entries < 1:
            raise ConfigError(
                f"merge_cache_entries must be >= 1, got {self.merge_cache_entries}"
            )
        if self.max_task_retries < 0:
            raise ConfigError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )
        if self.max_pool_restarts < 0:
            raise ConfigError(
                f"max_pool_restarts must be >= 0, got {self.max_pool_restarts}"
            )
        if self.task_timeout_seconds is not None and self.task_timeout_seconds <= 0:
            raise ConfigError(
                f"task_timeout_seconds must be positive, got "
                f"{self.task_timeout_seconds!r}"
            )
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise ConfigError(f"workers must be an integer, got {self.workers!r}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.parallel_min_rows < 0 or self.parallel_build_min_rows < 0:
            raise ConfigError("parallel row thresholds must be >= 0")
        if self.target_packet_ms is not None and self.target_packet_ms < 0:
            raise ConfigError(
                f"target_packet_ms must be >= 0, got {self.target_packet_ms}"
            )
        if self.checkpoint_interval_seconds < 0:
            raise ConfigError(
                f"checkpoint_interval_seconds must be >= 0, got "
                f"{self.checkpoint_interval_seconds}"
            )
        if self.checkpoint_interval_visits is not None and (
            not isinstance(self.checkpoint_interval_visits, int)
            or isinstance(self.checkpoint_interval_visits, bool)
            or self.checkpoint_interval_visits < 1
        ):
            raise ConfigError(
                f"checkpoint_interval_visits must be a positive integer, got "
                f"{self.checkpoint_interval_visits!r}"
            )
        if self.checkpoint_keep < 1:
            raise ConfigError(
                f"checkpoint_keep must be >= 1, got {self.checkpoint_keep}"
            )
        if not isinstance(self.attribute_order, AttributeOrder):
            try:
                object.__setattr__(
                    self, "attribute_order", AttributeOrder(self.attribute_order)
                )
            except ValueError as exc:
                raise ConfigError(f"unknown attribute order: {self.attribute_order!r}") from exc
        from repro.dataset.nulls import NullPolicy

        if not isinstance(self.null_policy, NullPolicy):
            try:
                object.__setattr__(
                    self, "null_policy", NullPolicy(self.null_policy)
                )
            except ValueError as exc:
                raise ConfigError(f"unknown null policy: {self.null_policy!r}") from exc


@dataclass
class GordianResult:
    """Everything a GORDIAN run produces.

    ``keys`` and ``nonkeys`` are lists of attribute-index tuples in the
    *original* schema numbering, sorted by (arity, indices).  When the
    dataset contains duplicate entities, ``no_keys_exist`` is true and
    ``keys`` is empty (the prefix-tree build aborted early, per Algorithm 2).
    """

    keys: List[Tuple[int, ...]]
    nonkeys: List[Tuple[int, ...]]
    num_attributes: int
    num_entities: int
    no_keys_exist: bool
    attribute_order: List[int]
    stats: RunStats
    attribute_names: Optional[List[str]] = None
    #: Per-column decode tables when the run dictionary-encoded its input
    #: (``GordianConfig.encode``); ``dictionaries[a].decode(code)`` maps a
    #: code back to the original value of column ``a``, so reported keys and
    #: non-keys can always be related back to the caller's values.
    dictionaries: Optional[List[object]] = None

    def decode_value(self, attribute: int, code: object) -> object:
        """Original value behind ``code`` in column ``attribute``.

        The identity when the run did not encode (``dictionaries is None``).
        """
        if self.dictionaries is None:
            return code
        return self.dictionaries[attribute].decode(code)

    @property
    def key_masks(self) -> List[int]:
        return [bitset.from_indices(key) for key in self.keys]

    @property
    def nonkey_masks(self) -> List[int]:
        return [bitset.from_indices(nk) for nk in self.nonkeys]

    def named_keys(self) -> List[Tuple[str, ...]]:
        """Keys as attribute-name tuples (requires ``attribute_names``)."""
        if self.attribute_names is None:
            raise DataError("no attribute names were supplied to find_keys")
        return [tuple(self.attribute_names[i] for i in key) for key in self.keys]

    def named_nonkeys(self) -> List[Tuple[str, ...]]:
        """Minimal non-keys as attribute-name tuples."""
        if self.attribute_names is None:
            raise DataError("no attribute names were supplied to find_keys")
        return [tuple(self.attribute_names[i] for i in nk) for nk in self.nonkeys]

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        if self.no_keys_exist:
            return (
                f"GORDIAN: dataset of {self.num_entities} entities has duplicate "
                "entities — no keys exist."
            )
        names = self.attribute_names or [f"a{i}" for i in range(self.num_attributes)]
        keys = ", ".join(
            bitset.format_attrset(mask, names) for mask in self.key_masks
        ) or "(none)"
        return (
            f"GORDIAN: {len(self.keys)} minimal key(s) over {self.num_entities} "
            f"entities x {self.num_attributes} attributes in "
            f"{self.stats.total_seconds:.4f}s: {keys}"
        )


def _order_attributes(
    rows: Sequence[Sequence[object]],
    num_attributes: int,
    order: AttributeOrder,
    cardinalities: Optional[Sequence[int]] = None,
) -> List[int]:
    """Return ``level_to_attr``: the original attribute at each tree level.

    ``cardinalities`` short-circuits the O(n*d) per-column scan when the
    caller already knows the distinct counts (the dictionary encoder's
    decode tables are exactly that).
    """
    # The out-of-core path passes rows=() with manifest cardinalities, so an
    # empty row sequence only short-circuits when there is nothing to sort by.
    if order is AttributeOrder.SCHEMA or (not rows and cardinalities is None):
        return list(range(num_attributes))
    if cardinalities is None:
        cardinalities = [len({row[a] for row in rows}) for a in range(num_attributes)]
    reverse = order is AttributeOrder.CARDINALITY_DESC
    # Stable sort keeps schema order among ties, so results are deterministic.
    return sorted(
        range(num_attributes), key=lambda a: cardinalities[a], reverse=reverse
    )


def _resolve_num_attributes(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int],
    attribute_names: Optional[Sequence[str]],
) -> int:
    """Validate the schema width and every row against it."""
    if num_attributes is None:
        if attribute_names is not None:
            num_attributes = len(attribute_names)
        elif rows:
            num_attributes = len(rows[0])
        else:
            raise DataError(
                "num_attributes (or attribute_names) is required for an empty dataset"
            )
    if attribute_names is not None and len(attribute_names) != num_attributes:
        raise DataError(
            f"{len(attribute_names)} attribute names for {num_attributes} attributes"
        )
    if num_attributes < 1:
        raise DataError("a dataset needs at least one attribute")
    for i, row in enumerate(rows):
        if len(row) != num_attributes:
            raise DataError(
                f"row {i} has {len(row)} attributes, expected {num_attributes}"
            )
    return num_attributes


def _translate_mask(mask: int, level_to_attr: Sequence[int]) -> Tuple[int, ...]:
    """Tree-level bitmask -> sorted attribute tuple in original numbering."""
    return tuple(sorted(level_to_attr[level] for level in bitset.iter_bits(mask)))


def _abort(
    exc: BaseException,
    *,
    phase: str,
    meter: Optional[BudgetMeter],
    stats: RunStats,
    partial_nonkeys: Sequence[Tuple[int, ...]] = (),
) -> BudgetExceededError:
    """Attach salvage information to an aborted run's exception.

    A :class:`BudgetExceededError` from a meter checkpoint is enriched in
    place; a ``KeyboardInterrupt`` is wrapped into one (budgeted runs only —
    plain :func:`find_keys` lets Ctrl-C propagate untouched).
    """
    stats.peak_rss_kb = measure_peak_rss_kb()
    if meter is not None:
        stats.budget = meter.snapshot()
    if isinstance(exc, BudgetExceededError):
        exc.phase = phase
        exc.stats = stats
        exc.partial_nonkeys = list(partial_nonkeys)
        return exc
    wrapped = BudgetExceededError(
        f"interrupted during {phase}",
        phase=phase,
        budget=meter.budget if meter is not None else None,
        partial_nonkeys=list(partial_nonkeys),
        stats=stats,
        interrupted=True,
    )
    wrapped.__cause__ = exc
    return wrapped


def _effective_workers(config: GordianConfig, num_rows: int) -> int:
    """Worker count a run will actually use (1 means the serial path).

    Applies, in order: the clamp to the usable CPU count (with a warning,
    unless ``clamp_workers`` is off), the ``encode`` requirement, and the
    ``parallel_min_rows`` floor under which pool startup costs more than
    the traversal.
    """
    if config.workers <= 1:
        return 1
    from repro.parallel.pool import resolve_workers

    workers = resolve_workers(config.workers, clamp=config.clamp_workers)
    if workers <= 1:
        return 1
    if not config.encode:
        _logger.warning(
            "parallel execution requires dictionary encoding (encode=True); "
            "running serially"
        )
        return 1
    if num_rows < config.parallel_min_rows:
        return 1
    return workers


def _run_pipeline(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int],
    attribute_names: Optional[Sequence[str]],
    config: Optional[GordianConfig],
    meter: Optional[BudgetMeter],
) -> GordianResult:
    """The shared build -> search -> convert pipeline (Figure 2).

    With ``meter`` set, every phase runs under cooperative budget
    enforcement and ``KeyboardInterrupt`` is converted into a
    :class:`BudgetExceededError` carrying the partial NonKeySet, so callers
    can degrade instead of losing the run.
    """
    config = config or GordianConfig()
    num_attributes = _resolve_num_attributes(rows, num_attributes, attribute_names)

    from repro.dataset.nulls import NullPolicy, apply_null_policy

    if config.null_policy is not NullPolicy.EQUAL:
        rows = apply_null_policy(rows, config.null_policy)

    stats = RunStats()

    # Performance layer: dictionary-encode the columns up front.  The codes
    # are equality-preserving, so keys and non-keys are unchanged; the tree
    # build then hashes dense ints, and the decode tables hand the ordering
    # heuristic every column's cardinality for free.
    dictionaries = None
    cardinalities = None
    if config.encode:
        from repro.perf.encode import encode_columns

        rows, dictionaries = encode_columns(rows, num_attributes)
        cardinalities = [len(codec) for codec in dictionaries]

    level_to_attr = _order_attributes(
        rows, num_attributes, config.attribute_order, cardinalities=cardinalities
    )
    if meter is not None:
        # The encode/cardinality scan above is O(n*d); settle the clock
        # before the build so a tiny deadline cannot be overshot unchecked.
        meter.checkpoint(force=True)

    workers = _effective_workers(config, len(rows))

    merge_cache = None
    if config.merge_cache and workers == 1:
        # Parallel runs skip the parent-side cache: each worker keeps its
        # own (whose counters aggregate back here), and a parent cache
        # would acquire merge results — stray refcounts the parallel
        # frontier expansion's shared-subtree test cannot tolerate.
        from repro.perf.merge_cache import MergeCache

        cache_bytes = None
        if meter is not None and meter.budget.max_bytes is not None:
            # Never let cache bookkeeping claim more than a quarter of the
            # memory budget; the meter additionally drains the cache under
            # pressure before tripping (see BudgetMeter.checkpoint).
            cache_bytes = max(1, meter.budget.max_bytes // 4)
        merge_cache = MergeCache(
            max_entries=config.merge_cache_entries,
            max_bytes=cache_bytes,
            stats=stats.search,
        )
        if meter is not None:
            meter.attach_memo_cache(merge_cache)

    names = list(attribute_names) if attribute_names else None

    pctx = None
    if workers > 1:
        from repro.parallel.backend import ParallelContext

        pool = None
        if config.reuse_pool:
            from repro.parallel.pool import shared_pool

            pool = shared_pool(workers, clamp=config.clamp_workers)
        # The level permutation is applied up front and materialized: the
        # workers' shared-memory row buffer holds tree-level order, so a
        # task path means the same thing in every process.
        pctx = ParallelContext(
            [tuple(row[a] for a in level_to_attr) for row in rows],
            num_attributes,
            config=config,
            workers=workers,
            pool=pool,
        )
    try:
        build_start = time.perf_counter()
        try:
            if pctx is not None:
                tree = pctx.build_tree(stats=stats.tree, budget=meter)
            else:
                tree = build_prefix_tree(
                    ([row[a] for a in level_to_attr] for row in rows),
                    num_attributes,
                    stats=stats.tree,
                    budget=meter,
                )
        except NoKeysExistError:
            stats.build_seconds = time.perf_counter() - build_start
            stats.completed_phases.append("build")
            stats.peak_rss_kb = measure_peak_rss_kb()
            if meter is not None:
                stats.budget = meter.snapshot()
            return GordianResult(
                keys=[],
                nonkeys=[tuple(range(num_attributes))],
                num_attributes=num_attributes,
                num_entities=len(rows),
                no_keys_exist=True,
                attribute_order=level_to_attr,
                stats=stats,
                attribute_names=names,
                dictionaries=dictionaries,
            )
        except BudgetExceededError as exc:
            stats.build_seconds = time.perf_counter() - build_start
            raise _abort(exc, phase="build", meter=meter, stats=stats)
        except WorkerFailureError as exc:
            stats.build_seconds = time.perf_counter() - build_start
            stats.peak_rss_kb = measure_peak_rss_kb()
            if meter is not None:
                stats.budget = meter.snapshot()
            exc.phase = "build"
            exc.stats = stats
            raise
        except KeyboardInterrupt as exc:
            if meter is None:
                raise
            stats.build_seconds = time.perf_counter() - build_start
            raise _abort(exc, phase="build", meter=meter, stats=stats) from exc
        stats.build_seconds = time.perf_counter() - build_start
        stats.completed_phases.append("build")

        search_start = time.perf_counter()
        if pctx is not None:
            finder = pctx.make_finder(tree, stats=stats.search, budget=meter)
        else:
            finder = NonKeyFinder(
                tree,
                pruning=config.pruning,
                stats=stats.search,
                budget=meter,
                merge_cache=merge_cache,
                # True maps to kernel auto-detect (numpy when importable,
                # inline loops otherwise); False pins the inline loops.
                vectorize=None if config.vectorize else False,
            )
        try:
            nonkey_set = finder.run()
        except WorkerFailureError as exc:
            # Workers failed past every recovery lever; salvage what the
            # completed tasks discovered (each mask is a genuine non-key)
            # and let the caller degrade.
            stats.search_seconds = time.perf_counter() - search_start
            stats.peak_rss_kb = measure_peak_rss_kb()
            if meter is not None:
                stats.budget = meter.snapshot()
            exc.phase = "search"
            exc.stats = stats
            exc.partial_nonkeys = [
                _translate_mask(mask, level_to_attr)
                for mask in finder.nonkeys.masks()
            ]
            raise
        except (BudgetExceededError, KeyboardInterrupt) as exc:
            if meter is None and isinstance(exc, KeyboardInterrupt):
                raise
            stats.search_seconds = time.perf_counter() - search_start
            raise _abort(
                exc,
                phase="search",
                meter=meter,
                stats=stats,
                partial_nonkeys=[
                    _translate_mask(mask, level_to_attr)
                    for mask in finder.nonkeys.masks()
                ],
            ) from (exc if isinstance(exc, KeyboardInterrupt) else None)
        stats.search_seconds = time.perf_counter() - search_start
        stats.completed_phases.append("search")
        if config.merge_cache:
            _warn_low_merge_cache_rate(stats.search)
    finally:
        if pctx is not None:
            pctx.close()

    convert_start = time.perf_counter()
    key_masks = keys_from_nonkey_masks(nonkey_set.masks(), num_attributes)
    stats.convert_seconds = time.perf_counter() - convert_start
    stats.completed_phases.append("convert")
    stats.peak_rss_kb = measure_peak_rss_kb()
    if meter is not None:
        stats.budget = meter.snapshot()

    keys = sorted(
        (_translate_mask(mask, level_to_attr) for mask in key_masks),
        key=lambda k: (len(k), k),
    )
    nonkeys = sorted(
        (_translate_mask(mask, level_to_attr) for mask in nonkey_set.masks()),
        key=lambda k: (len(k), k),
    )
    return GordianResult(
        keys=keys,
        nonkeys=nonkeys,
        num_attributes=num_attributes,
        num_entities=len(rows),
        no_keys_exist=False,
        attribute_order=level_to_attr,
        stats=stats,
        attribute_names=names,
        dictionaries=dictionaries,
    )


def find_keys(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    attribute_names: Optional[Sequence[str]] = None,
    config: Optional[GordianConfig] = None,
) -> GordianResult:
    """Discover all minimal (composite) keys of a collection of entities.

    Parameters
    ----------
    rows:
        The entities; each row is an indexable sequence of hashable values.
    num_attributes:
        Schema width.  Defaults to ``len(attribute_names)`` or the width of
        the first row.
    attribute_names:
        Optional names used in human-readable output.
    config:
        Pruning switches and the attribute-ordering heuristic.

    Returns
    -------
    GordianResult
        Minimal keys and minimal non-keys in original attribute numbering.
    """
    return _run_pipeline(rows, num_attributes, attribute_names, config, meter=None)


def run_with_budget(
    rows: Sequence[Sequence[object]],
    budget: Union[RunBudget, BudgetMeter, None],
    num_attributes: Optional[int] = None,
    attribute_names: Optional[Sequence[str]] = None,
    config: Optional[GordianConfig] = None,
) -> GordianResult:
    """Exact :func:`find_keys` under a resource budget (fail-fast flavor).

    Accepts a :class:`~repro.robustness.RunBudget` (armed here, so the
    deadline starts now) or an already-armed
    :class:`~repro.robustness.BudgetMeter` (for callers composing several
    stages under one deadline).  On a tripped limit — or a
    ``KeyboardInterrupt`` — raises :class:`~repro.errors.BudgetExceededError`
    whose ``phase``, ``partial_nonkeys``, and ``stats`` attributes carry
    everything the run had discovered; :func:`find_keys_robust` is the
    catch-and-degrade wrapper around this.
    """
    if budget is None:
        budget = RunBudget()
    meter = budget.start() if isinstance(budget, RunBudget) else budget
    return _run_pipeline(rows, num_attributes, attribute_names, config, meter=meter)


#: Progressively smaller reservoir sizes tried by the sampling fallback.
DEFAULT_FALLBACK_SAMPLE_SIZES: Tuple[int, ...] = (2048, 512, 128, 32)


@dataclass
class RobustKeyResult:
    """Outcome of :func:`find_keys_robust` — exact when possible, degraded
    but useful when not.

    Exactly one of ``exact`` / ``approximate`` is populated on success paths;
    both may be ``None`` only when even the smallest fallback sample tripped
    its grace budget.  ``partial_nonkeys`` holds the minimal non-keys the
    aborted exact run had discovered (original attribute numbering) — a
    sound-but-incomplete NonKeySet: every one is a real non-key.
    """

    degraded: bool
    reason: Optional[str]
    phase: Optional[str]
    interrupted: bool
    exact: Optional[GordianResult]
    approximate: Optional[object]  # ApproximateKeyResult (lazy import)
    partial_nonkeys: List[Tuple[int, ...]]
    sample_sizes_tried: List[int]
    budget: Optional[RunBudget]
    stats: Optional[RunStats]
    attribute_names: Optional[List[str]] = None
    #: True when the degradation was caused by unrecoverable worker failure
    #: (:class:`~repro.errors.WorkerFailureError`) rather than a budget
    #: trip — the CLI maps this to the worker-failure exit code.
    worker_failure: bool = False

    @property
    def keys(self) -> List[Tuple[int, ...]]:
        """Unified key list: exact keys, or the sampled approximate keys."""
        if self.exact is not None:
            return list(self.exact.keys)
        if self.approximate is not None:
            return [tuple(key.attrs) for key in self.approximate.keys]
        return []

    @property
    def no_keys_exist(self) -> bool:
        return self.exact is not None and self.exact.no_keys_exist

    def summary(self) -> str:
        """Human-readable one-paragraph report."""
        if not self.degraded:
            return self.exact.summary()
        what = "worker failure" if self.worker_failure else "tripped"
        parts = [f"GORDIAN DEGRADED ({self.reason}; {what} in {self.phase})"]
        if self.approximate is not None:
            parts.append(
                f"fell back to a {self.approximate.sample_size}-row sample: "
                f"{len(self.approximate.keys)} approximate key(s)"
            )
        else:
            parts.append("sampling fallback found no keys")
        if self.partial_nonkeys:
            parts.append(f"salvaged {len(self.partial_nonkeys)} partial non-key(s)")
        return "; ".join(parts)


def find_keys_robust(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    attribute_names: Optional[Sequence[str]] = None,
    config: Optional[GordianConfig] = None,
    budget: Optional[RunBudget] = None,
    sample_sizes: Sequence[int] = DEFAULT_FALLBACK_SAMPLE_SIZES,
    seed: int = 0,
    threshold: float = 0.8,
    fallback_grace_seconds: float = 1.0,
    max_eval_rows: int = 100_000,
) -> RobustKeyResult:
    """Budgeted key discovery that degrades to sampling mode, never raises
    on resource exhaustion.

    Runs the exact pipeline under ``budget``.  If a limit trips (or the user
    hits Ctrl-C), the partial NonKeySet is salvaged and the paper's sampling
    mode (section 3.9) takes over: GORDIAN reruns on progressively smaller
    reservoir samples (``sample_sizes``, clamped to the dataset), each under
    a fresh ``fallback_grace_seconds`` wall-clock grace budget, until one
    completes.  The sampled keys are graded against (up to
    ``max_eval_rows`` of) the full data and annotated with the Bayesian
    strength lower bound ``T(K)``, and the result carries
    ``degraded=True`` plus the reason, phase, and partial-run stats.

    Unrecoverable parallel worker failure
    (:class:`~repro.errors.WorkerFailureError`, raised when retries, pool
    restarts, and serial fallback are all spent or disabled) degrades the
    same way, with ``worker_failure=True`` and the sampling fallback forced
    serial.

    Schema/validation errors still raise — only resource exhaustion and
    worker failure degrade.
    """
    from repro.core.approximate import find_approximate_keys

    budget = budget or RunBudget()
    names = list(attribute_names) if attribute_names else None
    try:
        exact = run_with_budget(
            rows,
            budget,
            num_attributes=num_attributes,
            attribute_names=attribute_names,
            config=config,
        )
        return RobustKeyResult(
            degraded=False,
            reason=None,
            phase=None,
            interrupted=False,
            exact=exact,
            approximate=None,
            partial_nonkeys=[],
            sample_sizes_tried=[],
            budget=budget,
            stats=exact.stats,
            attribute_names=names,
        )
    except (BudgetExceededError, WorkerFailureError) as exc:
        return degraded_result_from_failure(
            exc,
            rows,
            num_attributes=num_attributes,
            attribute_names=attribute_names,
            config=config,
            budget=budget,
            sample_sizes=sample_sizes,
            seed=seed,
            threshold=threshold,
            fallback_grace_seconds=fallback_grace_seconds,
            max_eval_rows=max_eval_rows,
        )


def degraded_result_from_failure(
    exc: Union[BudgetExceededError, WorkerFailureError],
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    attribute_names: Optional[Sequence[str]] = None,
    config: Optional[GordianConfig] = None,
    budget: Optional[RunBudget] = None,
    sample_sizes: Sequence[int] = DEFAULT_FALLBACK_SAMPLE_SIZES,
    seed: int = 0,
    threshold: float = 0.8,
    fallback_grace_seconds: float = 1.0,
    max_eval_rows: int = 100_000,
) -> RobustKeyResult:
    """Degrade an aborted run into a :class:`RobustKeyResult`.

    The back half of :func:`find_keys_robust`, exposed so the CLI can also
    degrade a *plain* ``find_keys`` run that died of worker failure without
    re-running the exact pipeline: the salvage attributes ride on ``exc``,
    and only the sampling-mode fallback (paper section 3.9) executes here.
    """
    from repro.core.approximate import find_approximate_keys
    from dataclasses import replace

    names = list(attribute_names) if attribute_names else None
    if num_attributes is None and names is not None:
        num_attributes = len(names)
    worker_failure = isinstance(exc, WorkerFailureError)
    if config is not None and config.workers != 1:
        # The fallback must not depend on the machinery that just failed
        # (dead workers, broken pool) — sampling runs serially.
        config = replace(config, workers=1)

    # Sampling-mode fallback.  Each attempt gets its own small grace budget:
    # the original deadline has typically already passed, and an expired
    # meter would trip the fallback instantly, defeating the degradation.
    approximate = None
    tried: List[int] = []
    total = len(rows)
    for size in sample_sizes:
        size = min(size, total)
        if size <= 0 or (tried and size >= tried[-1]):
            continue
        tried.append(size)
        grace = RunBudget(wall_clock_seconds=fallback_grace_seconds)
        try:
            approximate = find_approximate_keys(
                rows,
                size=size,
                seed=seed,
                threshold=threshold,
                config=config,
                num_attributes=num_attributes,
                budget=grace,
                max_eval_rows=max_eval_rows,
            )
            break
        except (BudgetExceededError, KeyboardInterrupt):
            # Too big even for the grace budget (or interrupted again):
            # shrink the sample and try once more.
            approximate = None
            continue

    return RobustKeyResult(
        degraded=True,
        reason=getattr(exc, "reason", str(exc)),
        phase=exc.phase,
        interrupted=exc.interrupted,
        exact=None,
        approximate=approximate,
        partial_nonkeys=list(exc.partial_nonkeys),
        sample_sizes_tried=tried,
        budget=budget,
        stats=exc.stats,
        attribute_names=names,
        worker_failure=worker_failure,
    )

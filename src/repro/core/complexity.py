"""Cost model from the paper's Theorem 1 (section 3.8).

Under three assumptions — generalized Zipfian per-attribute frequencies with
parameter ``theta``, only the single-entity sub-case of singleton pruning,
and no inter-attribute correlation — the paper bounds GORDIAN's time by

    O( s * d * T^(1 + (1 + theta) / log_d(C)) + s^2 )

and its memory by ``O(d * T)``, where ``s`` is the number of mutually
non-redundant non-keys, ``d`` the number of attributes, ``C`` the average
attribute cardinality, and ``T`` the number of entities.  This module
evaluates the model so experiments can plot predicted-versus-measured
scaling and tests can check the headline claims (e.g. the paper's example:
``theta = 0``, ``d = 30``, ``C = 5000`` gives an exponent of about 1.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GordianCostModel", "time_exponent"]


def time_exponent(theta: float, num_attributes: int, avg_cardinality: float) -> float:
    """The exponent ``1 + (1 + theta) / log_d(C)`` of the ``T`` term.

    Requires ``d >= 2`` and ``C > 1`` so the logarithm is positive.
    """
    if num_attributes < 2:
        raise ValueError("the model needs at least 2 attributes")
    if avg_cardinality <= 1:
        raise ValueError("average cardinality must exceed 1")
    if theta < 0:
        raise ValueError("theta must be >= 0")
    log_d_c = math.log(avg_cardinality) / math.log(num_attributes)
    return 1.0 + (1.0 + theta) / log_d_c


@dataclass(frozen=True)
class GordianCostModel:
    """Evaluates Theorem 1's time and memory bounds (up to constants)."""

    theta: float
    num_attributes: int
    avg_cardinality: float
    num_nonkeys: int

    def time_cost(self, num_entities: int) -> float:
        """``s * d * T^exponent + s^2`` (the O-constant taken as 1)."""
        if num_entities < 0:
            raise ValueError("num_entities must be >= 0")
        exponent = time_exponent(self.theta, self.num_attributes, self.avg_cardinality)
        return (
            self.num_nonkeys * self.num_attributes * num_entities**exponent
            + self.num_nonkeys**2
        )

    def memory_cost(self, num_entities: int) -> float:
        """``d * T`` — the prefix tree is at worst one cell per attribute value."""
        if num_entities < 0:
            raise ValueError("num_entities must be >= 0")
        return self.num_attributes * num_entities

    def scaling_ratio(self, entities_a: int, entities_b: int) -> float:
        """Predicted time ratio between two dataset sizes (same schema)."""
        if entities_a <= 0 or entities_b <= 0:
            raise ValueError("entity counts must be positive")
        return self.time_cost(entities_b) / self.time_cost(entities_a)

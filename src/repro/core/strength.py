"""Key strength and approximate keys (paper, section 3.9).

When GORDIAN runs on a sample it reports every true key plus *false keys*
(keys of the sample, not of the full dataset).  A false key is still useful
when its **strength** — distinct key values in the dataset divided by the
number of entities — is close to 1; such attribute sets are *approximate
keys*.  The paper also gives an approximate-Bayesian lower bound on the
strength of a sample-discovered key:

    T(K) = 1 - prod_{v in K} (N - D_v + 1) / (N + 2)

where ``N`` is the sample size and ``D_v`` the number of distinct values of
attribute ``v`` in the sample (a "rule of succession"-style argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "strength",
    "distinct_count",
    "bayesian_strength_bound",
    "kivinen_mannila_sample_size",
    "KeyStrength",
    "classify_keys",
    "StrengthEvaluator",
]


def distinct_count(rows: Sequence[Sequence[object]], attrs: Sequence[int]) -> int:
    """Number of distinct value combinations of ``attrs`` among ``rows``."""
    if not attrs:
        return 1 if rows else 0
    seen = set()
    for row in rows:
        seen.add(tuple(row[a] for a in attrs))
    return len(seen)


def strength(rows: Sequence[Sequence[object]], attrs: Sequence[int]) -> float:
    """Exact strength of an attribute set: distinct combinations / #rows.

    A strict key has strength 1.0; lower values measure how far the set is
    from being a key.  An empty relation has strength 1.0 by convention
    (there is no duplicate to witness a non-key).
    """
    total = len(rows)
    if total == 0:
        return 1.0
    return distinct_count(rows, attrs) / total


def bayesian_strength_bound(
    sample_size: int, distinct_per_attr: Iterable[int]
) -> float:
    """The paper's probabilistic lower bound ``T(K)`` on a key's strength.

    Parameters
    ----------
    sample_size:
        ``N``, the number of sampled entities.
    distinct_per_attr:
        ``D_v`` for each attribute ``v`` of the discovered key ``K``.
    """
    if sample_size < 0:
        raise ValueError("sample_size must be >= 0")
    product = 1.0
    for d_v in distinct_per_attr:
        if d_v < 0 or d_v > sample_size:
            raise ValueError(
                f"distinct count {d_v} must lie in [0, sample size {sample_size}]"
            )
        product *= (sample_size - d_v + 1) / (sample_size + 2)
    return 1.0 - product


def kivinen_mannila_sample_size(
    num_entities: int, num_attributes: int, epsilon: float, delta: float
) -> int:
    """Kivinen & Mannila's worst-case sample size ``O(sqrt(T)/eps (d + log 1/delta))``.

    Guarantees, with probability ``1 - delta``, that every key discovered in
    the sample has strength exceeding ``1 - epsilon`` on the full data.  The
    paper cites this bound to argue it is pessimistic for realistic data;
    we expose it so the sampling experiments can report both the bound and
    the (much smaller) sample sizes that already work in practice.
    """
    import math

    if not 0 < epsilon <= 1 or not 0 < delta < 1:
        raise ValueError("epsilon must be in (0, 1] and delta in (0, 1)")
    if num_entities < 0 or num_attributes < 1:
        raise ValueError("need num_entities >= 0 and num_attributes >= 1")
    bound = math.sqrt(num_entities) / epsilon * (
        num_attributes + math.log(1.0 / delta)
    )
    return min(num_entities, max(1, math.ceil(bound)))


class StrengthEvaluator:
    """Batch-evaluates exact strengths of many attribute sets over one table.

    Dictionary-encodes every column once, then computes distinct counts by
    iteratively combining encoded columns with numpy (falling back to pure
    Python when numpy is unavailable).  The Figure 14/15 experiments call
    this with thousands of sample-discovered keys, where per-key hashing of
    full projections would dominate the run.
    """

    def __init__(self, rows: Sequence[Sequence[object]], num_attributes: int):
        self.total = len(rows)
        self.num_attributes = num_attributes
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is a test-env given
            numpy = None
        self._np = numpy
        self._columns = []
        self._cardinalities = []
        for attr in range(num_attributes):
            mapping: Dict[object, int] = {}
            encoded = []
            for row in rows:
                value = row[attr]
                code = mapping.get(value)
                if code is None:
                    code = len(mapping)
                    mapping[value] = code
                encoded.append(code)
            if numpy is not None:
                encoded = numpy.asarray(encoded, dtype=numpy.int64)
            self._columns.append(encoded)
            self._cardinalities.append(len(mapping))
        self._rows = rows if numpy is None else None

    def distinct_count(self, attrs: Sequence[int]) -> int:
        """Distinct combinations of ``attrs`` (== :func:`distinct_count`)."""
        attrs = list(attrs)
        if not attrs:
            return 1 if self.total else 0
        if self._np is None:
            return distinct_count(self._rows, attrs)
        np = self._np
        codes = self._columns[attrs[0]]
        for attr in attrs[1:]:
            # Re-compress after each combine so products never overflow.
            codes = np.unique(codes, return_inverse=True)[1]
            codes = codes * self._cardinalities[attr] + self._columns[attr]
        return int(np.unique(codes).size)

    def strength(self, attrs: Sequence[int]) -> float:
        """Exact strength (distinct / total); 1.0 for an empty table."""
        if self.total == 0:
            return 1.0
        return self.distinct_count(attrs) / self.total

    def is_key(self, attrs: Sequence[int]) -> bool:
        return self.distinct_count(attrs) == self.total


@dataclass(frozen=True)
class KeyStrength:
    """Strength report for one sample-discovered key."""

    attrs: Tuple[int, ...]
    strength: float
    bound: float
    is_true_key: bool

    def is_false_key(self, threshold: float = 0.8) -> bool:
        """Paper definition (section 4.3): a false key has strength < 80%."""
        return self.strength < threshold


def classify_keys(
    full_rows: Sequence[Sequence[object]],
    sample_rows: Sequence[Sequence[object]],
    keys: Iterable[Sequence[int]],
) -> List[KeyStrength]:
    """Evaluate sample-discovered keys against the full dataset.

    For each key, computes its exact strength on ``full_rows`` (projection
    with duplicate elimination divided by the total number of tuples — the
    procedure of section 4.3) and the ``T(K)`` bound from the sample.
    """
    sample_size = len(sample_rows)
    distinct_cache: Dict[int, int] = {}

    def sample_distinct(attr: int) -> int:
        if attr not in distinct_cache:
            distinct_cache[attr] = len({row[attr] for row in sample_rows})
        return distinct_cache[attr]

    reports: List[KeyStrength] = []
    for key in keys:
        attrs = tuple(key)
        value = strength(full_rows, attrs)
        bound = bayesian_strength_bound(
            sample_size, [sample_distinct(a) for a in attrs]
        )
        reports.append(
            KeyStrength(
                attrs=attrs,
                strength=value,
                bound=bound,
                is_true_key=value >= 1.0,
            )
        )
    return reports

"""Traced NonKeyFinder runs — the paper's section 3.5 walkthrough as data.

``trace_nonkey_finder`` runs the exact Algorithm 4 traversal while recording
every event: node visits (with the current slice and candidate non-key),
merges, discovered non-keys, and each pruning decision.  The trace both
powers an educational rendering (``render_trace`` narrates the run the way
section 3.5 narrates the Figure 6 example) and gives tests a window into
*why* the algorithm did what it did, not only its final answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core import bitset
from repro.core.merge import merge_children
from repro.core.nonkey_finder import PruningConfig
from repro.core.nonkey_set import NonKeySet
from repro.core.prefix_tree import Node, PrefixTree, build_prefix_tree
from repro.core.stats import SearchStats

__all__ = ["TraceEvent", "Trace", "trace_nonkey_finder", "render_trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded step of the traversal.

    ``kind`` is one of ``visit``, ``leaf``, ``nonkey``, ``merge``,
    ``prune-shared``, ``prune-one-cell``, ``prune-single-entity``,
    ``prune-futile``, ``discard``.
    """

    kind: str
    level: int
    candidate: Tuple[int, ...]
    detail: str = ""


@dataclass
class Trace:
    """A full traced run."""

    events: List[TraceEvent] = field(default_factory=list)
    nonkeys: List[Tuple[int, ...]] = field(default_factory=list)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def counts(self) -> dict:
        tally: dict = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally


class _TracingFinder:
    """Algorithm 4 with event recording (kept separate from the production
    NonKeyFinder so the hot path stays unencumbered)."""

    def __init__(self, tree: PrefixTree, pruning: PruningConfig, trace: Trace):
        self.tree = tree
        self.pruning = pruning
        self.trace = trace
        self.nonkeys = NonKeySet(tree.num_attributes)
        self._cur = bitset.EMPTY
        self._width = tree.num_attributes

    def _emit(self, kind: str, level: int, detail: str = "") -> None:
        self.trace.events.append(
            TraceEvent(
                kind=kind,
                level=level,
                candidate=bitset.to_tuple(self._cur),
                detail=detail,
            )
        )

    def _add(self, mask: int, level: int) -> None:
        if mask == bitset.EMPTY:
            return
        if self.nonkeys.insert(mask):
            self.trace.nonkeys.append(bitset.to_tuple(mask))
            self._emit("nonkey", level, bitset.format_attrset(mask, self._names()))

    def _names(self) -> List[str]:
        return [f"a{i}" for i in range(self._width)]

    def run(self) -> NonKeySet:
        if self.tree.num_entities:
            self._visit(self.tree.root, 0)
        return self.nonkeys

    def _visit(self, root: Node, level: int) -> None:
        root.visited = True
        self._cur |= bitset.singleton(level)
        self._emit("visit", level, f"{len(root.cells)} cell(s)")

        if root.is_leaf:
            self._emit("leaf", level)
            for cell in root.cells.values():
                if cell.count != 1:
                    self._add(self._cur, level)
                    break
            self._cur &= ~bitset.singleton(level)
            only = next(iter(root.cells.values())).count if len(root.cells) == 1 else 0
            if len(root.cells) > 1 or only > 1:
                self._add(self._cur, level)
            return

        if self.pruning.single_entity and root.entity_count == 1:
            self._cur &= ~bitset.singleton(level)
            self._emit("prune-single-entity", level)
            return

        for cell in root.cells.values():
            child = cell.child
            if self.pruning.singleton and child.visited:
                self._emit("prune-shared", level, f"value={cell.value!r}")
                continue
            self._visit(child, level + 1)

        self._cur &= ~bitset.singleton(level)

        if self.pruning.singleton and len(root.cells) == 1:
            self._emit("prune-one-cell", level)
            return
        if self.pruning.futility:
            reachable = self._cur | bitset.suffix_mask(level + 1, self._width)
            if self.nonkeys.is_covered(reachable):
                self._emit("prune-futile", level)
                return
        merged = merge_children(self.tree, root)
        self._emit("merge", level, f"{len(root.cells)} children")
        if merged.visited and self.pruning.singleton:
            self._emit("prune-shared", level, "merged tree already traversed")
            return
        self.tree.acquire(merged)
        try:
            self._visit(merged, level + 1)
        finally:
            self.tree.discard(merged)
            self._emit("discard", level)


def trace_nonkey_finder(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    pruning: Optional[PruningConfig] = None,
) -> Trace:
    """Run a traced Algorithm 4 over ``rows`` and return the trace.

    The discovered non-keys (``trace.nonkeys``, insertion order, possibly
    later evicted from the container) match the production NonKeyFinder's
    container contents — a test asserts this equivalence.
    """
    if num_attributes is None:
        if not rows:
            raise ValueError("num_attributes required for an empty dataset")
        num_attributes = len(rows[0])
    tree = build_prefix_tree(rows, num_attributes)
    trace = Trace()
    finder = _TracingFinder(tree, pruning or PruningConfig(), trace)
    container = finder.run()
    # Keep only the surviving (maximal) non-keys in the summary field.
    trace.nonkeys = [bitset.to_tuple(mask) for mask in container.sorted_masks()]
    return trace


def render_trace(
    trace: Trace, attribute_names: Optional[Sequence[str]] = None
) -> str:
    """Narrate a trace, one indented line per event (cf. section 3.5)."""
    lines: List[str] = []
    for event in trace.events:
        indent = "  " * event.level
        candidate = (
            "{" + ", ".join(
                attribute_names[i] if attribute_names else f"a{i}"
                for i in event.candidate
            ) + "}"
        )
        detail = f"  [{event.detail}]" if event.detail else ""
        lines.append(f"{indent}{event.kind:<20} cand={candidate}{detail}")
    found = ", ".join(str(nk) for nk in trace.nonkeys) or "(none)"
    lines.append(f"non-keys found: {found}")
    return "\n".join(lines)

"""Prefix-tree representation of a dataset (paper, section 3.2.1).

The dataset is compressed into a prefix tree during a single pass: each tree
level corresponds to one attribute, each node holds a set of *cells* (one
per distinct value observed at that level under the node's prefix), and each
cell points to a child node one level deeper.  A root-to-leaf path is a
unique entity; leaf cells carry the multiplicity of that entity.  Every cell
additionally records the number of entities below it ("the sum of the
counters over all leaf nodes that are descended from the cell"), which
powers the single-entity pruning rule.

Nodes are shared between the original tree and merged trees (section 3.2.2),
so discarding uses reference counting exactly as the paper describes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.stats import TreeStats
from repro.errors import DataError, NoKeysExistError
from repro.robustness import faults

__all__ = ["Cell", "Node", "PrefixTree", "build_prefix_tree"]


class Cell:
    """One value slot inside a node.

    ``count`` is the number of entities below this cell.  For a leaf cell it
    is the multiplicity of the entity; for an interior cell it is the sum of
    leaf counters underneath.  ``child`` is ``None`` exactly when the cell
    lives in a leaf node.
    """

    __slots__ = ("value", "count", "child")

    def __init__(self, value: object, count: int = 0, child: Optional["Node"] = None):
        self.value = value
        self.count = count
        self.child = child

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.child is None else "node"
        return f"Cell(value={self.value!r}, count={self.count}, {kind})"


class Node:
    """A prefix-tree node: an ordered mapping from value to :class:`Cell`.

    ``refcount`` counts the cells (plus tree roots) that point at this node;
    merged trees share subtrees instead of copying them, and
    :meth:`PrefixTree.discard` releases a subtree only when the last
    reference drops.  ``visited`` marks nodes already traversed by
    NonKeyFinder — a cell pointing at a visited node is a *shared prefix
    tree* in the sense of Algorithm 4 line 18, and singleton pruning skips
    it.

    ``entity_count`` is maintained incrementally (on insert and on merge)
    instead of summing the cells on every read: the single-entity pruning
    rule consults it once per visited interior node, which made the O(cells)
    recomputation a measurable hot spot.  The invariant — ``entity_count ==
    sum(cell.count for cell in cells.values())`` — is checked by
    :meth:`recount_entities` in tests.
    """

    __slots__ = ("cells", "level", "refcount", "visited", "entity_count")

    def __init__(self, level: int):
        self.cells: Dict[object, Cell] = {}
        self.level = level
        self.refcount = 0
        self.visited = False
        self.entity_count = 0

    @property
    def is_leaf(self) -> bool:
        """True iff the node's cells carry no children."""
        for cell in self.cells.values():
            return cell.child is None
        return True

    def recount_entities(self) -> int:
        """Recompute the entity count from the cells (test oracle for the
        incrementally maintained ``entity_count``)."""
        return sum(cell.count for cell in self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    def values(self) -> Iterator[object]:
        return iter(self.cells.keys())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node(level={self.level}, cells={len(self.cells)}, "
            f"leaf={self.is_leaf}, entities={self.entity_count})"
        )


class PrefixTree:
    """A prefix tree plus the bookkeeping GORDIAN needs around it.

    Attributes
    ----------
    root:
        The level-0 node (may be empty for an empty dataset).
    num_attributes:
        Depth of the tree; level ``num_attributes - 1`` holds the leaves.
    num_entities:
        Total number of rows inserted (with multiplicity).
    stats:
        Structural counters (allocations, peak live nodes) shared with any
        merged trees derived from this one.
    budget:
        Optional armed :class:`~repro.robustness.BudgetMeter`; node
        allocations and row inserts report to it, so a budgeted run can be
        stopped cooperatively mid-build (and mid-merge, since merged trees
        allocate through :meth:`new_node`).
    """

    def __init__(
        self,
        num_attributes: int,
        stats: Optional[TreeStats] = None,
        budget: Optional[object] = None,
    ):
        if num_attributes < 1:
            raise DataError(f"a dataset needs >= 1 attribute, got {num_attributes}")
        self.num_attributes = num_attributes
        self.stats = stats if stats is not None else TreeStats()
        self.budget = budget
        if budget is not None:
            budget.attach_tree_stats(self.stats)
        self.root = self._new_node(0)
        self.root.refcount = 1
        self.num_entities = 0
        # Free listeners fire whenever reference counting frees a node; the
        # merge-memoization cache uses this to invalidate id-keyed entries
        # the instant a member node dies (before its id can be recycled).
        self._free_listeners: List = []

    # ------------------------------------------------------------------
    # construction

    def _new_node(self, level: int) -> Node:
        node = Node(level)
        self.stats.on_node_created()
        if self.budget is not None:
            self.budget.on_node()
        return node

    def new_node(self, level: int) -> Node:
        """Allocate a node at ``level`` (used by the merge operator)."""
        return self._new_node(level)

    def insert(self, entity: Sequence[object]) -> None:
        """Insert one entity, following Algorithm 2 of the paper.

        Raises
        ------
        NoKeysExistError
            If the entity is a duplicate of a previously inserted one: a
            leaf counter exceeding 1 proves that no attribute set is a key,
            so GORDIAN aborts (Algorithm 2, lines 17-18).
        """
        if len(entity) != self.num_attributes:
            raise DataError(
                f"entity has {len(entity)} attributes, expected {self.num_attributes}"
            )
        faults.check("tree.insert")
        if self.budget is not None:
            self.budget.on_row()
        node = self.root
        last = self.num_attributes - 1
        for attr_no, value in enumerate(entity):
            cell = node.cells.get(value)
            if cell is None:
                cell = Cell(value)
                node.cells[value] = cell
                self.stats.on_cells_created()
                if attr_no < last:
                    cell.child = self._new_node(attr_no + 1)
                    cell.child.refcount = 1
            node.entity_count += 1
            if attr_no == last:
                cell.count += 1
                self.num_entities += 1
                if cell.count > 1:
                    raise NoKeysExistError(
                        "duplicate entity observed: the dataset has no keys"
                    )
            else:
                cell.count += 1
                node = cell.child
        return None

    # ------------------------------------------------------------------
    # discard (reference counting)

    def acquire(self, node: Node) -> Node:
        """Take a reference on ``node`` (a merged tree now points at it)."""
        node.refcount += 1
        return node

    def add_free_listener(self, listener, watched=None) -> None:
        """Register ``listener(node)`` to fire when a node's refcount hits 0.

        ``watched``, when given, is a live container queried by node id:
        the listener only fires for nodes whose ``id`` is in it at free
        time.  Freeing is hot (every merged subtree ends here) and a
        C-level membership probe is far cheaper than an always-taken Python
        call, so listeners that care about few nodes (the merge cache
        watches only memoized subtrees) should pass their index.
        """
        self._free_listeners.append((listener, watched))

    def discard(self, node: Node) -> None:
        """Drop a reference on ``node``; free the subtree when it hits zero.

        Shared nodes (referenced from both the original tree and a merged
        tree) survive until their last referencing cell is discarded —
        "caution is required when discarding a merged prefix tree to ensure
        that any shared nodes are retained" (section 3.3).
        """
        listeners = self._free_listeners
        last_level = self.num_attributes - 1
        stack = [node]
        while stack:
            current = stack.pop()
            current.refcount -= 1
            if current.refcount > 0:
                continue
            if current.refcount < 0:
                raise AssertionError("prefix-tree node over-released")
            if current.level != last_level:
                # Leaf cells carry no children; skipping the scan matters
                # because freed merged leaves hold the widest cell dicts.
                for cell in current.cells.values():
                    if cell.child is not None:
                        stack.append(cell.child)
            self.stats.on_node_discarded(len(current.cells))
            current.cells = {}
            if listeners:
                for listener, watched in listeners:
                    if watched is None or id(current) in watched:
                        listener(current)

    # ------------------------------------------------------------------
    # introspection helpers (used by tests and the cube reference)

    def iter_entities(self) -> Iterator[Tuple[Tuple[object, ...], int]]:
        """Yield ``(entity, multiplicity)`` for every root-to-leaf path.

        Runs on an explicit stack (one iterator per level), so trees as deep
        as the attribute count never touch the Python recursion limit.
        """
        path: List[object] = []
        stack = [iter(self.root.cells.items())]
        while stack:
            descended = False
            for value, cell in stack[-1]:
                if cell.child is None:
                    path.append(value)
                    yield tuple(path), cell.count
                    path.pop()
                else:
                    path.append(value)
                    stack.append(iter(cell.child.cells.items()))
                    descended = True
                    break
            if not descended:
                stack.pop()
                if path:
                    path.pop()

    def node_count(self) -> int:
        """Number of distinct reachable nodes (shared nodes counted once)."""
        count = 0
        for _node in self.depth_first_nodes():
            count += 1
        return count

    def depth_first_nodes(self) -> Iterator[Node]:
        """Yield reachable nodes in depth-first preorder (shared nodes once).

        Iterative: an explicit stack replaces recursion so arbitrarily deep
        trees (hundreds of attributes) traverse in O(1) Python stack.
        """
        seen = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            # Push children in reverse cell order so they pop in cell order,
            # preserving the recursive version's preorder.
            children = [
                cell.child
                for cell in node.cells.values()
                if cell.child is not None
            ]
            for child in reversed(children):
                stack.append(child)


def build_prefix_tree(
    rows: Iterable[Sequence[object]],
    num_attributes: int,
    stats: Optional[TreeStats] = None,
    budget: Optional[object] = None,
) -> PrefixTree:
    """Build a prefix tree from an iterable of rows (Algorithm 2).

    A single pass over ``rows``; raises :class:`NoKeysExistError` on the
    first duplicate entity.  When ``budget`` (an armed
    :class:`~repro.robustness.BudgetMeter`) is given, the build reports row
    inserts and node allocations to it and may raise
    :class:`~repro.errors.BudgetExceededError` mid-pass.
    """
    tree = PrefixTree(num_attributes, stats=stats, budget=budget)
    for row in rows:
        tree.insert(row)
    return tree

"""On-disk checkpoint encoding and crash-safe file replacement.

A checkpoint generation is a single self-validating file::

    MAGIC (8 bytes)  | b"GORDCKP1"
    version (u32 LE) | format version, currently 1
    length (u64 LE)  | payload byte count
    payload          | pickled run-state dict
    crc32 (u32 LE)   | CRC-32 of payload

Every field is checked on decode, so a torn write — power loss mid-write,
ENOSPC truncation, a stray editor — surfaces as
:class:`~repro.errors.CheckpointCorruptError` instead of a pickle crash or,
worse, a silently wrong resume.

:func:`write_atomic` is the single write path: payload goes to a temp file
in the target directory, is flushed and fsynced, then renamed over the
destination (``os.replace``, atomic on POSIX), followed by a best-effort
directory fsync so the rename itself is durable.  Readers therefore only
ever observe either the previous complete generation or the new complete
generation.  The temp file is registered with the shared cleanup registry
(:mod:`repro.robustness.cleanup`) for the duration of the write, so a crash
between creation and rename cannot orphan it past interpreter exit.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, List, Tuple, Union

from repro.errors import CheckpointCorruptError
from repro.robustness import cleanup, faults

__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "encode_checkpoint",
    "decode_checkpoint",
    "decode_frames",
    "write_atomic",
]

MAGIC = b"GORDCKP1"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<8sIQ")  # magic, version, payload length
_FOOTER = struct.Struct("<I")  # crc32 of payload

#: Cleanup-registry namespace for in-flight checkpoint temp files.
_TMP_NAMESPACE = "ckpt-tmp:"


def encode_checkpoint(payload: Any) -> bytes:
    """Serialize ``payload`` into the framed, checksummed wire format."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        _HEADER.pack(MAGIC, FORMAT_VERSION, len(body))
        + body
        + _FOOTER.pack(zlib.crc32(body) & 0xFFFFFFFF)
    )


def decode_checkpoint(data: bytes) -> Any:
    """Inverse of :func:`encode_checkpoint`; raises on any inconsistency."""
    if len(data) < _HEADER.size + _FOOTER.size:
        raise CheckpointCorruptError(
            f"checkpoint truncated: {len(data)} bytes is shorter than the "
            f"fixed framing ({_HEADER.size + _FOOTER.size} bytes)"
        )
    magic, version, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CheckpointCorruptError(
            f"bad checkpoint magic {magic!r} (expected {MAGIC!r})"
        )
    if version != FORMAT_VERSION:
        raise CheckpointCorruptError(
            f"unsupported checkpoint format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    expected_size = _HEADER.size + length + _FOOTER.size
    if len(data) != expected_size:
        raise CheckpointCorruptError(
            f"checkpoint size mismatch: header promises {expected_size} "
            f"bytes, file has {len(data)}"
        )
    body = data[_HEADER.size:_HEADER.size + length]
    (crc,) = _FOOTER.unpack_from(data, _HEADER.size + length)
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointCorruptError("checkpoint payload fails its CRC check")
    try:
        return pickle.loads(body)
    except Exception as exc:  # valid CRC but unpicklable: version skew
        raise CheckpointCorruptError(
            f"checkpoint payload does not unpickle: {exc}"
        ) from exc


def decode_frames(data: bytes) -> Tuple[List[Any], int]:
    """Decode consecutive :func:`encode_checkpoint` frames from ``data``.

    The append-only flavour of :func:`decode_checkpoint`: callers (the
    service job journal) concatenate frames into one file, and a crash can
    tear only the *last* append.  Returns ``(payloads, clean_offset)`` where
    ``clean_offset`` is the end of the last frame that decoded fully —
    everything before it is intact, everything after it is a torn tail the
    caller should truncate away.  A corrupt frame *followed by* further
    parseable bytes still stops the scan: frames carry no resync marker, so
    trusting anything past the first damage would risk replaying records
    out of order.
    """
    payloads: List[Any] = []
    offset = 0
    total = len(data)
    while offset < total:
        remaining = total - offset
        if remaining < _HEADER.size + _FOOTER.size:
            break
        magic, version, length = _HEADER.unpack_from(data, offset)
        if magic != MAGIC or version != FORMAT_VERSION:
            break
        frame_end = offset + _HEADER.size + length + _FOOTER.size
        if frame_end > total:
            break
        body = data[offset + _HEADER.size:offset + _HEADER.size + length]
        (crc,) = _FOOTER.unpack_from(data, offset + _HEADER.size + length)
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            break
        try:
            payloads.append(pickle.loads(body))
        except Exception:
            break
        offset = frame_end
    return payloads, offset


def write_atomic(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` so readers never see a partial file.

    Fault points ``checkpoint.write`` (before any byte lands) and
    ``checkpoint.rename`` (after fsync, before the atomic replace) let
    tests exercise every torn-write window deterministically.  Any
    ``OSError`` propagates to the caller — the checkpoint manager wraps
    this in a retry-with-backoff for transient failures.
    """
    path = Path(path)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    key = _TMP_NAMESPACE + str(tmp)
    cleanup.register(key, lambda: _unlink_quiet(tmp))
    try:
        faults.check("checkpoint.write")
        fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        faults.check("checkpoint.rename")
        os.replace(str(tmp), str(path))
        _fsync_dir_quiet(path.parent)
    finally:
        cleanup.unregister(key)
        _unlink_quiet(tmp)


def _unlink_quiet(path: Path) -> None:
    try:
        os.unlink(str(path))
    except OSError:
        pass


def _fsync_dir_quiet(directory: Path) -> None:
    """Fsync a directory so a rename survives power loss; best-effort
    because some filesystems (and all of Windows) refuse directory fds."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)

"""Checkpoint generation management: fingerprints, rotation, signals.

The :class:`CheckpointManager` owns one checkpoint directory and the policy
around it:

* **generations** — each write lands in a fresh ``ckpt-%08d.bin`` file via
  the atomic protocol in :mod:`repro.checkpoint.format`; the newest ``keep``
  generations survive, older ones are pruned.  Loading scans newest-first
  and silently falls back past a torn or corrupt newest generation (the
  exact artifact a crash mid-rotation leaves behind); only when *no*
  generation decodes does it raise
  :class:`~repro.errors.CheckpointCorruptError`.
* **fingerprints** — a checkpoint binds to its input: dataset identity
  (path/size/content hash or a hash over the in-memory rows) plus a hash of
  the *result-affecting* configuration.  Resuming against different input or
  a result-changing config raises
  :class:`~repro.errors.CheckpointMismatchError` instead of silently
  producing keys for the wrong dataset.  Execution-only knobs (worker
  count, cache sizes, supervision limits) are deliberately excluded, so a
  serial run's checkpoint resumes fine under ``--workers N`` and vice
  versa — slice decomposition makes the result identical either way.
* **signals** — :meth:`signal_guard` installs SIGTERM/SIGINT handlers that
  *request* a stop; the run's cooperative checkpoint hooks notice, write a
  final generation, and raise
  :class:`~repro.errors.CheckpointStopRequested`.  A second signal falls
  through to ``KeyboardInterrupt`` so an impatient operator still wins.

Writes go through :func:`~repro.robustness.retry.retry_with_backoff`:
transient ``OSError`` (EAGAIN, ENOSPC that clears, NFS hiccups) get three
attempts with short backoff.  A periodic checkpoint that still fails is
*dropped* — losing one generation costs re-doing a slice of work on
resume, whereas failing the run would cost all of it; the failure is
counted and warned about.  Final (stop-requested) checkpoints are
``required``: their failure propagates, because exiting with
"checkpointed" status while nothing landed on disk would be a lie.
"""

from __future__ import annotations

import hashlib
import re
import signal
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.checkpoint.format import decode_checkpoint, encode_checkpoint, write_atomic
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    RetryExhaustedError,
)
from repro.robustness.retry import retry_with_backoff

__all__ = [
    "DatasetFingerprint",
    "config_fingerprint",
    "fingerprint_file",
    "fingerprint_rows",
    "CheckpointManager",
]

_GENERATION_RE = re.compile(r"^ckpt-(\d{8})\.bin$")


# ----------------------------------------------------------------------
# fingerprints

@dataclass(frozen=True)
class DatasetFingerprint:
    """Identity of the input a checkpoint belongs to."""

    path: str  # source path, or "<memory>" for in-process row lists
    size_bytes: int
    sha256: str  # content hash (file bytes, or canonical row repr)
    config_hash: str  # hash of result-affecting configuration fields

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "size_bytes": self.size_bytes,
            "sha256": self.sha256,
            "config_hash": self.config_hash,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DatasetFingerprint":
        return cls(
            path=str(data["path"]),
            size_bytes=int(data["size_bytes"]),
            sha256=str(data["sha256"]),
            config_hash=str(data["config_hash"]),
        )

    def mismatch_reason(self, other: "DatasetFingerprint") -> Optional[str]:
        """Human-readable description of the first difference, or ``None``."""
        if self.sha256 != other.sha256 or self.size_bytes != other.size_bytes:
            return (
                f"dataset content changed (checkpoint hash {self.sha256[:12]}, "
                f"current {other.sha256[:12]})"
            )
        if self.config_hash != other.config_hash:
            return (
                "result-affecting configuration changed "
                f"(checkpoint {self.config_hash[:12]}, current "
                f"{other.config_hash[:12]})"
            )
        if self.path != other.path:
            # Same bytes under a new name: allowed, content is what matters.
            return None
        return None


def config_fingerprint(config) -> str:
    """Hash of the configuration fields that change the *result*.

    Only fields that alter which keys come out are included: pruning rules
    (they are exact, but they change traversal order and the checkpoint
    embeds traversal state), attribute ordering, null policy, and encoding.
    Execution knobs — workers, cache sizes, retries, timeouts, checkpoint
    cadence itself — are excluded by design so checkpoints move freely
    between serial and parallel resumes.
    """
    pruning = config.pruning
    parts = (
        f"singleton={pruning.singleton}",
        f"single_entity={pruning.single_entity}",
        f"futility={pruning.futility}",
        f"attribute_order={config.attribute_order.value}",
        f"null_policy={config.null_policy.value}",
        f"encode={config.encode}",
    )
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


def fingerprint_file(path: Union[str, Path], config) -> DatasetFingerprint:
    """Fingerprint a dataset file by path, size, and content hash."""
    path = Path(path)
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            size += len(chunk)
            digest.update(chunk)
    return DatasetFingerprint(
        path=str(path),
        size_bytes=size,
        sha256=digest.hexdigest(),
        config_hash=config_fingerprint(config),
    )


def fingerprint_rows(rows: Sequence[Sequence[object]], config) -> DatasetFingerprint:
    """Fingerprint in-memory rows by a canonical repr hash.

    ``repr`` of each cell is unambiguous for the value types GORDIAN
    accepts (str/int/float/None) and cheap; a field separator that cannot
    appear inside ``repr`` output keeps the encoding injective.
    """
    digest = hashlib.sha256()
    size = 0
    for row in rows:
        line = "\x1f".join(repr(value) for value in row).encode("utf-8")
        line += b"\x1e"
        size += len(line)
        digest.update(line)
    return DatasetFingerprint(
        path="<memory>",
        size_bytes=size,
        sha256=digest.hexdigest(),
        config_hash=config_fingerprint(config),
    )


# ----------------------------------------------------------------------
# manager

class CheckpointManager:
    """Owns one checkpoint directory: write cadence, rotation, recovery."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        interval_seconds: float = 30.0,
        interval_visits: Optional[int] = None,
        keep: int = 3,
        fingerprint: Optional[DatasetFingerprint] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if interval_seconds < 0:
            raise CheckpointError(
                f"checkpoint interval must be >= 0, got {interval_seconds}"
            )
        if interval_visits is not None and interval_visits < 1:
            raise CheckpointError(
                f"checkpoint interval_visits must be >= 1, got {interval_visits}"
            )
        if keep < 1:
            raise CheckpointError(f"checkpoint keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.interval_seconds = interval_seconds
        self.interval_visits = interval_visits
        self.keep = keep
        self.fingerprint = fingerprint
        self._clock = clock
        self._sleep = sleep
        self._last_write: Optional[float] = None
        # Progress anchor for the visits cadence: the ``progress`` value at
        # the last due() that fired (or the first ever observed).  Each
        # pipeline phase reports its own monotone counter (build rows,
        # search visits); the anchor resets naturally because the first
        # due() of a phase only anchors, it never fires on visits.
        self._last_progress: Optional[int] = None
        #: Path of the most recent successfully written generation.
        self.latest_path: Optional[Path] = None
        #: Set to the signal name when a guarded SIGTERM/SIGINT arrived;
        #: cooperative checkpoint hooks poll this to stop gracefully.
        self.stop_requested: Optional[str] = None
        self.writes = 0
        self.write_retries = 0
        self.write_failures = 0

    # -- cadence -------------------------------------------------------

    def due(self, progress: Optional[int] = None) -> bool:
        """True when a periodic write is due at this hook.

        The wall-clock cadence fires when ``interval_seconds`` elapsed
        since the last write (or nothing was written yet; or the interval
        is 0, meaning checkpoint at every hook).  When ``interval_visits``
        is set and the caller reports ``progress`` — any per-phase monotone
        work counter (build rows done, search nodes visited) — a write
        also becomes due every ``interval_visits`` units of progress,
        bounding the *work* a crash can replay, not just the time.  A
        ``progress`` value below the anchor means the caller moved to a new
        phase with its own counter; the anchor resets without firing.
        """
        visits_due = False
        if self.interval_visits is not None and progress is not None:
            anchor = self._last_progress
            if anchor is None or progress < anchor:
                self._last_progress = progress
            elif progress - anchor >= self.interval_visits:
                visits_due = True
        if self._last_write is None or self.interval_seconds == 0:
            time_due = True
        else:
            time_due = self._clock() - self._last_write >= self.interval_seconds
        fired = time_due or visits_due
        if fired and progress is not None:
            # Whichever cadence fired, the caller writes now — re-anchor so
            # replay work is bounded from *this* point.
            self._last_progress = progress
        return fired

    # -- generations ---------------------------------------------------

    def _generations(self) -> List[Path]:
        """Existing generation files, oldest first."""
        found = []
        try:
            entries = list(self.directory.iterdir())
        except FileNotFoundError:
            return []
        for entry in entries:
            match = _GENERATION_RE.match(entry.name)
            if match:
                found.append((int(match.group(1)), entry))
        found.sort()
        return [path for _, path in found]

    def generation_paths(self) -> List[Path]:
        """Existing checkpoint generation files, oldest first."""
        return self._generations()

    def write(self, payload: Dict[str, Any], *, required: bool = True) -> Optional[Path]:
        """Durably write ``payload`` as the next generation.

        Transient ``OSError`` is retried with backoff.  When retries are
        exhausted: a ``required`` write re-raises (final checkpoints must
        not silently vanish), a periodic write is dropped — counted in
        ``write_failures`` and warned to stderr — and ``None`` returned.
        """
        if self.fingerprint is not None:
            payload = dict(payload)
            payload["fingerprint"] = self.fingerprint.as_dict()
        data = encode_checkpoint(payload)
        generations = self._generations()
        if generations:
            last = _GENERATION_RE.match(generations[-1].name)
            index = int(last.group(1)) + 1
        else:
            index = 0
        path = self.directory / f"ckpt-{index:08d}.bin"

        def count_retry(_attempt: int, _error: BaseException) -> None:
            self.write_retries += 1

        def attempt() -> None:
            write_atomic(path, data)

        try:
            retry_with_backoff(
                attempt,
                attempts=3,
                base_delay=0.01,
                retry_on=(OSError,),
                sleep=self._sleep,
                on_retry=count_retry,
            )
        except (RetryExhaustedError, OSError) as exc:
            self.write_failures += 1
            if required:
                raise
            print(
                f"warning: periodic checkpoint write failed, continuing: {exc}",
                file=sys.stderr,
            )
            return None
        self.writes += 1
        self._last_write = self._clock()
        self.latest_path = path
        self._prune()
        return path

    def _prune(self) -> None:
        for stale in self._generations()[:-self.keep]:
            try:
                stale.unlink()
            except OSError:
                pass

    def load_latest(self) -> Optional[Dict[str, Any]]:
        """Decode the newest usable generation; ``None`` for an empty dir.

        Falls back past torn/corrupt generations newest-first; raises
        :class:`CheckpointCorruptError` only when generations exist but
        none decodes, and :class:`CheckpointMismatchError` when the
        decoded state belongs to different input.
        """
        generations = self._generations()
        if not generations:
            return None
        last_error: Optional[Exception] = None
        for path in reversed(generations):
            try:
                raw = path.read_bytes()
                payload = decode_checkpoint(raw)
            except (OSError, CheckpointCorruptError) as exc:
                last_error = exc
                continue
            if self.fingerprint is not None:
                recorded = payload.get("fingerprint")
                if recorded is None:
                    raise CheckpointMismatchError(
                        f"checkpoint {path.name} carries no dataset "
                        "fingerprint; refusing to resume against it"
                    )
                reason = DatasetFingerprint.from_dict(recorded).mismatch_reason(
                    self.fingerprint
                )
                if reason is not None:
                    raise CheckpointMismatchError(
                        f"checkpoint {path.name} does not match this run: "
                        f"{reason}.  Delete the checkpoint directory to "
                        "start fresh."
                    )
            return payload
        raise CheckpointCorruptError(
            f"no usable checkpoint in {self.directory}: all "
            f"{len(generations)} generation(s) are torn or corrupt "
            f"(last error: {last_error})"
        )

    def clear(self) -> None:
        """Remove every generation — called after a run completes, so a
        later run in the same directory starts fresh instead of resuming
        past the finish line."""
        for path in self._generations():
            try:
                path.unlink()
            except OSError:
                pass
        self.latest_path = None
        self._last_write = None

    # -- signals -------------------------------------------------------

    @contextmanager
    def signal_guard(self) -> Iterator["CheckpointManager"]:
        """Convert the first SIGTERM/SIGINT into a cooperative stop request.

        The handler only sets :attr:`stop_requested`; the run's checkpoint
        hooks write a final generation and raise
        :class:`~repro.errors.CheckpointStopRequested` at the next safe
        point.  A *second* signal raises ``KeyboardInterrupt`` immediately.
        Outside the main thread signal handlers cannot be installed; the
        guard degrades to a no-op there.
        """
        installed = []

        def handler(signum, frame):
            name = signal.Signals(signum).name
            if self.stop_requested is not None:
                raise KeyboardInterrupt
            self.stop_requested = name

        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous = signal.signal(sig, handler)
                except (ValueError, OSError):  # non-main thread / platform
                    continue
                installed.append((sig, previous))
            yield self
        finally:
            for sig, previous in installed:
                try:
                    signal.signal(sig, previous)
                except (ValueError, OSError):
                    pass

"""Durable checkpoint/resume for long-running key discovery.

See :mod:`repro.checkpoint.runner` for the pipeline entry point,
:mod:`repro.checkpoint.manager` for generation/fingerprint/signal policy,
and :mod:`repro.checkpoint.format` for the crash-safe on-disk format.
"""

from repro.checkpoint.format import (
    decode_checkpoint,
    encode_checkpoint,
    write_atomic,
)
from repro.checkpoint.manager import (
    CheckpointManager,
    DatasetFingerprint,
    config_fingerprint,
    fingerprint_file,
    fingerprint_rows,
)
from repro.checkpoint.runner import find_keys_checkpointed, manager_for_config
from repro.errors import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStopRequested,
)

__all__ = [
    "encode_checkpoint",
    "decode_checkpoint",
    "write_atomic",
    "CheckpointManager",
    "DatasetFingerprint",
    "config_fingerprint",
    "fingerprint_file",
    "fingerprint_rows",
    "find_keys_checkpointed",
    "manager_for_config",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "CheckpointStopRequested",
]

"""Checkpointed GORDIAN pipeline: crash-safe discovery with exact resume.

:func:`find_keys_checkpointed` is the durable sibling of
:func:`repro.core.gordian.find_keys`: same result, same salvage semantics,
but the run periodically snapshots everything needed to continue after a
crash, a SIGKILL, or a deliberate stop:

* the frozen prefix tree (build phase: plus how many rows are inserted;
  search phase: the complete tree, frozen once — the root tree is immutable
  during the traversal);
* the NonKeySet antichain and the list of completed slice paths — written
  together, *after* a slice's masks are unioned, so the two are always
  mutually consistent in any one generation;
* the budget meter snapshot, so a resumed run's consumed time and visit
  counts carry over instead of resetting (a 60s budget cannot become 120s
  by crashing at 59s);
* the dataset fingerprint, so resuming against changed input or a
  result-changing configuration fails loudly.

Resume soundness rests on two properties of the underlying algorithm:
every mask in a restored NonKeySet is a genuine non-key (so seeding and
pruning against it only skips provably redundant work), and Algorithm 5's
union + re-minimization is order-independent (so re-running a slice that
was killed mid-flight, or skipping one that finished, converges to exactly
the uninterrupted answer).  The serial search runs through
:class:`~repro.parallel.search.SerialSliceSearch` — the serial traversal
decomposed into the parallel path's independent slices — precisely to get
a checkpointable unit of completed work with those properties.

Checkpoints written under one worker count resume under any other: slice
paths are finer-grained in bigger pools, so a cross-mode resume may re-run
a few slices (idempotent under union), but the result is identical.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.checkpoint.manager import CheckpointManager, fingerprint_rows
from repro.core import bitset
from repro.core.gordian import (
    GordianConfig,
    GordianResult,
    _abort,
    _effective_workers,
    _order_attributes,
    _resolve_num_attributes,
    _translate_mask,
    _warn_low_merge_cache_rate,
)
from repro.core.key_conversion import keys_from_nonkey_masks
from repro.core.nonkey_set import NonKeySet
from repro.core.prefix_tree import PrefixTree
from repro.core.stats import RunStats, measure_peak_rss_kb
from repro.errors import (
    BudgetExceededError,
    CheckpointMismatchError,
    CheckpointStopRequested,
    ConfigError,
    NoKeysExistError,
    WorkerFailureError,
)
from repro.robustness import BudgetMeter, RunBudget

__all__ = ["find_keys_checkpointed", "manager_for_config"]

#: Serial build checkpoints are considered every this many row inserts —
#: frequent enough that ``--checkpoint-interval 0`` lands a generation
#: quickly, rare enough that ``due()`` polling stays invisible.
_BUILD_BATCH = 512


def manager_for_config(
    config: GordianConfig,
    fingerprint,
) -> CheckpointManager:
    """Build the :class:`CheckpointManager` a config's checkpoint fields ask
    for; raises :class:`~repro.errors.ConfigError` without a directory."""
    if not config.checkpoint_dir:
        raise ConfigError(
            "checkpointed runs need GordianConfig.checkpoint_dir "
            "(CLI: --checkpoint-dir)"
        )
    return CheckpointManager(
        config.checkpoint_dir,
        interval_seconds=config.checkpoint_interval_seconds,
        interval_visits=getattr(config, "checkpoint_interval_visits", None),
        keep=config.checkpoint_keep,
        fingerprint=fingerprint,
    )


def _freeze_root(tree: PrefixTree) -> bytes:
    from repro.parallel.shard import freeze_tree

    return freeze_tree(tree.root, tree.num_attributes).tobytes()


class _CheckpointedRun:
    """Mutable state shared by the build/search hooks of one run."""

    def __init__(
        self,
        manager: CheckpointManager,
        stats: RunStats,
        meter: Optional[BudgetMeter],
        num_attributes: int,
        num_rows: int,
        level_to_attr: List[int],
    ):
        self.manager = manager
        self.stats = stats
        self.meter = meter
        self.num_attributes = num_attributes
        self.num_rows = num_rows
        self.level_to_attr = level_to_attr
        #: Frozen tree bytes, set once the build completes.
        self.frozen_tree: Optional[bytes] = None
        #: NonKeySet under construction (search phase).
        self.nonkeys: Optional[NonKeySet] = None
        #: Paths of slices whose results are in ``nonkeys``.
        self.completed: List[tuple] = []
        #: Wall seconds from *previous* sessions, restored from the
        #: checkpoint; the current session's phase timers add onto these.
        self.prior_build_seconds = 0.0
        self.prior_search_seconds = 0.0

    # -- payload assembly ----------------------------------------------

    def _base_payload(self, phase: str) -> dict:
        return {
            "phase": phase,
            "num_attributes": self.num_attributes,
            "num_rows": self.num_rows,
            "level_to_attr": list(self.level_to_attr),
            "budget": self.meter.snapshot() if self.meter is not None else None,
            "counters": self.stats.search.as_dict(),
        }

    def build_payload(self, rows_done: int, tree: PrefixTree) -> dict:
        payload = self._base_payload("build")
        payload["rows_done"] = rows_done
        payload["tree"] = _freeze_root(tree)
        payload["build_seconds"] = self.stats.build_seconds
        return payload

    def search_payload(self) -> dict:
        payload = self._base_payload("search")
        payload["tree"] = self.frozen_tree
        payload["nonkeys"] = list(self.nonkeys.masks()) if self.nonkeys else []
        payload["completed"] = list(self.completed)
        payload["build_seconds"] = self.stats.build_seconds
        payload["search_seconds"] = self.stats.search_seconds
        return payload

    # -- writes --------------------------------------------------------

    def write(self, payload: dict, *, required: bool) -> Optional[object]:
        path = self.manager.write(payload, required=required)
        if path is not None:
            self.stats.search.checkpoints_written += 1
        else:
            self.stats.search.checkpoint_write_failures += 1
        return path

    def write_best_effort(self, payload_fn: Callable[[], dict]) -> None:
        """Final checkpoint on an abnormal exit (budget trip, worker
        failure, interrupt) — never masks the original exception."""
        try:
            self.write(payload_fn(), required=False)
        except Exception:
            self.stats.search.checkpoint_write_failures += 1

    def stop_if_requested(self, payload_fn: Callable[[], dict]) -> None:
        """Honor a signal-guard stop: write a *required* final generation,
        then raise :class:`CheckpointStopRequested`."""
        signal_name = self.manager.stop_requested
        if signal_name is None:
            return
        path = self.write(payload_fn(), required=True)
        raise CheckpointStopRequested(
            f"{signal_name} received: checkpoint written, stopping",
            checkpoint_path=path,
            signal_name=signal_name,
        )


def _validate_state(state: dict, run: _CheckpointedRun) -> None:
    """Cross-check structural facts a fingerprint match already implies —
    belt and braces against a hand-edited or mixed-up checkpoint."""
    for key, expected in (
        ("num_attributes", run.num_attributes),
        ("num_rows", run.num_rows),
        ("level_to_attr", list(run.level_to_attr)),
    ):
        if state.get(key) != expected:
            raise CheckpointMismatchError(
                f"checkpoint {key} is {state.get(key)!r} but this run "
                f"derives {expected!r}; the checkpoint belongs to a "
                "different dataset or configuration"
            )


def find_keys_checkpointed(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    attribute_names: Optional[Sequence[str]] = None,
    config: Optional[GordianConfig] = None,
    budget=None,
    manager: Optional[CheckpointManager] = None,
    resume: bool = False,
) -> GordianResult:
    """:func:`~repro.core.gordian.find_keys` with durable checkpoints.

    With ``resume=True`` the newest usable generation in the checkpoint
    directory (if any) seeds the run: tree thawed, NonKeySet restored,
    completed slices skipped, consumed budget carried via
    :meth:`~repro.robustness.BudgetMeter.preload`.  On success the
    checkpoint directory is cleared; on a budget trip, worker failure, or
    interrupt a final generation is written best-effort before the usual
    salvage-carrying exception propagates; on a signal-guard stop the final
    write is mandatory and :class:`~repro.errors.CheckpointStopRequested`
    carries its path.

    ``budget`` accepts a :class:`~repro.robustness.RunBudget` or an armed
    :class:`~repro.robustness.BudgetMeter`, as :func:`run_with_budget`
    does; ``None`` means unbudgeted (signals and crashes are still the
    reason to checkpoint).
    """
    config = config or GordianConfig()
    num_attributes = _resolve_num_attributes(rows, num_attributes, attribute_names)

    from repro.dataset.nulls import NullPolicy, apply_null_policy

    if config.null_policy is not NullPolicy.EQUAL:
        rows = apply_null_policy(rows, config.null_policy)

    if manager is None:
        manager = manager_for_config(config, fingerprint_rows(rows, config))

    meter: Optional[BudgetMeter] = None
    if budget is not None:
        meter = budget.start() if isinstance(budget, RunBudget) else budget

    stats = RunStats()

    dictionaries = None
    cardinalities = None
    if config.encode:
        from repro.perf.encode import encode_columns

        rows, dictionaries = encode_columns(rows, num_attributes)
        cardinalities = [len(codec) for codec in dictionaries]

    level_to_attr = _order_attributes(
        rows, num_attributes, config.attribute_order, cardinalities=cardinalities
    )
    if meter is not None:
        meter.checkpoint(force=True)

    workers = _effective_workers(config, len(rows))
    names = list(attribute_names) if attribute_names else None

    run = _CheckpointedRun(
        manager, stats, meter, num_attributes, len(rows), level_to_attr
    )

    state: Optional[dict] = None
    if resume:
        state = manager.load_latest()
        if state is not None:
            _validate_state(state, run)
            if meter is not None and state.get("budget"):
                meter.preload(state["budget"])
            stats.search.add_counters(state.get("counters") or {})
            run.prior_build_seconds = float(state.get("build_seconds", 0.0))
            if state["phase"] == "search":
                run.prior_search_seconds = float(
                    state.get("search_seconds", 0.0)
                )

    # The search phase (and any sharded build) needs the rows permuted into
    # tree-level order and materialized; the serial build streams the same
    # permutation row by row.
    permuted = [tuple(row[a] for a in level_to_attr) for row in rows]

    pctx = None
    if workers > 1:
        from repro.parallel.backend import ParallelContext

        pool = None
        if config.reuse_pool:
            from repro.parallel.pool import shared_pool

            pool = shared_pool(workers, clamp=config.clamp_workers)
        pctx = ParallelContext(
            permuted, num_attributes, config=config, workers=workers, pool=pool
        )

    try:
        # -- build ------------------------------------------------------
        build_start = time.perf_counter()
        stats.build_seconds = run.prior_build_seconds

        def settle_build() -> None:
            stats.build_seconds = run.prior_build_seconds + (
                time.perf_counter() - build_start
            )

        try:
            if state is not None and state["phase"] == "search":
                # The checkpoint holds the finished tree: thaw instead of
                # rebuilding.  new_node-routed allocation re-charges tree
                # stats and the budget meter exactly as a build would
                # (which is why ``preload`` does not carry node counts).
                from repro.parallel.shard import thaw_into_tree

                tree = PrefixTree(
                    num_attributes, stats=stats.tree, budget=meter
                )
                thaw_into_tree(state["tree"], tree, len(rows))
            elif pctx is not None:
                run.stop_if_requested(
                    lambda: run.build_payload(0, _empty_tree(run))
                )
                tree = _build_sharded_checkpointed(run, pctx, state, meter)
            else:
                tree = _build_serial_checkpointed(
                    run, permuted, state, config, meter
                )
        except NoKeysExistError:
            settle_build()
            stats.completed_phases.append("build")
            stats.peak_rss_kb = measure_peak_rss_kb()
            if meter is not None:
                stats.budget = meter.snapshot()
            manager.clear()
            return GordianResult(
                keys=[],
                nonkeys=[tuple(range(num_attributes))],
                num_attributes=num_attributes,
                num_entities=len(rows),
                no_keys_exist=True,
                attribute_order=level_to_attr,
                stats=stats,
                attribute_names=names,
                dictionaries=dictionaries,
            )
        except CheckpointStopRequested:
            settle_build()
            raise
        except BudgetExceededError as exc:
            settle_build()
            raise _abort(exc, phase="build", meter=meter, stats=stats)
        except WorkerFailureError as exc:
            settle_build()
            if meter is not None:
                stats.budget = meter.snapshot()
            exc.phase = "build"
            exc.stats = stats
            raise
        except KeyboardInterrupt as exc:
            settle_build()
            if meter is None:
                raise
            raise _abort(exc, phase="build", meter=meter, stats=stats) from exc
        settle_build()
        stats.completed_phases.append("build")

        # -- search -----------------------------------------------------
        search_start = time.perf_counter()
        stats.search_seconds = run.prior_search_seconds

        def settle_search() -> None:
            stats.search_seconds = run.prior_search_seconds + (
                time.perf_counter() - search_start
            )

        # Freeze once: the root tree is immutable during the traversal
        # (slice merges hang off retained side nodes), so every search
        # checkpoint reuses these bytes.
        run.frozen_tree = _freeze_root(tree)

        restored_masks: List[int] = []
        skip_paths: Set[tuple] = set()
        if state is not None and state["phase"] == "search":
            restored_masks = [int(mask) for mask in state.get("nonkeys", [])]
            run.completed = [
                tuple(tuple(step) for step in path)
                for path in state.get("completed", [])
            ]
            skip_paths = set(run.completed)

        def on_slice_done(task) -> None:
            run.completed.append(task.path)
            settle_search()
            run.stop_if_requested(run.search_payload)
            # Search-phase progress for the visits cadence: the aggregated
            # visit counter (workers' counters land in it at slice
            # completion, which is exactly when this hook runs).
            if manager.due(stats.search.nodes_visited):
                run.write(run.search_payload(), required=False)

        if pctx is not None:
            finder = pctx.make_finder(
                tree,
                stats=stats.search,
                budget=meter,
                skip_paths=skip_paths,
                on_slice_done=on_slice_done,
            )
        else:
            from repro.parallel.search import SerialSliceSearch

            finder = SerialSliceSearch(
                tree,
                pruning=config.pruning,
                stats=stats.search,
                budget=meter,
                skip_paths=skip_paths,
                on_slice_done=on_slice_done,
                vectorize=None if config.vectorize else False,
            )
        if restored_masks:
            finder.nonkeys = NonKeySet.from_antichain(
                num_attributes,
                restored_masks,
                vectorize=None if config.vectorize else False,
            )
        run.nonkeys = finder.nonkeys

        # Phase boundary: land one generation holding the finished tree,
        # so a crash during the search never has to rebuild.
        run.stop_if_requested(run.search_payload)
        run.write(run.search_payload(), required=False)

        try:
            nonkey_set = finder.run()
        except CheckpointStopRequested:
            settle_search()
            raise
        except WorkerFailureError as exc:
            settle_search()
            if meter is not None:
                stats.budget = meter.snapshot()
            exc.phase = "search"
            exc.stats = stats
            exc.partial_nonkeys = [
                _translate_mask(mask, level_to_attr)
                for mask in finder.nonkeys.masks()
            ]
            run.write_best_effort(run.search_payload)
            raise
        except (BudgetExceededError, KeyboardInterrupt) as exc:
            settle_search()
            run.write_best_effort(run.search_payload)
            if meter is None and isinstance(exc, KeyboardInterrupt):
                raise
            raise _abort(
                exc,
                phase="search",
                meter=meter,
                stats=stats,
                partial_nonkeys=[
                    _translate_mask(mask, level_to_attr)
                    for mask in finder.nonkeys.masks()
                ],
            ) from (exc if isinstance(exc, KeyboardInterrupt) else None)
        settle_search()
        stats.completed_phases.append("search")
        if config.merge_cache:
            _warn_low_merge_cache_rate(stats.search)
    finally:
        if pctx is not None:
            pctx.close()

    # -- convert --------------------------------------------------------
    convert_start = time.perf_counter()
    key_masks = keys_from_nonkey_masks(nonkey_set.masks(), num_attributes)
    stats.convert_seconds = time.perf_counter() - convert_start
    stats.completed_phases.append("convert")
    stats.peak_rss_kb = measure_peak_rss_kb()
    if meter is not None:
        stats.budget = meter.snapshot()

    keys = sorted(
        (_translate_mask(mask, level_to_attr) for mask in key_masks),
        key=lambda k: (len(k), k),
    )
    nonkeys = sorted(
        (_translate_mask(mask, level_to_attr) for mask in nonkey_set.masks()),
        key=lambda k: (len(k), k),
    )
    # Durable success: a later run in this directory must start fresh.
    manager.clear()
    return GordianResult(
        keys=keys,
        nonkeys=nonkeys,
        num_attributes=num_attributes,
        num_entities=len(rows),
        no_keys_exist=False,
        attribute_order=level_to_attr,
        stats=stats,
        attribute_names=names,
        dictionaries=dictionaries,
    )


def _empty_tree(run: _CheckpointedRun) -> PrefixTree:
    """Zero-row stand-in for a build-phase stop before any row landed."""
    return PrefixTree(run.num_attributes)


def _build_sharded_checkpointed(
    run: _CheckpointedRun,
    pctx,
    state: Optional[dict],
    meter: Optional[BudgetMeter],
) -> PrefixTree:
    """Sharded build with per-shard frozen-tree checkpoints.

    Each completed shard's frozen bytes land in a ``"build-shards"``
    generation as they arrive, so a mid-build crash resumes from the last
    frozen shard instead of rebuilding the whole phase.  Resume only
    trusts a checkpoint whose shard plan matches this run's exactly — a
    different worker count re-plans the shards, and partial trees over
    different row ranges cannot be mixed (the merge reduction's
    correctness rests on contiguous, ordered shards).  The merge
    reduction itself is not checkpointed: it is cheap relative to the
    shard builds, and a crash there replays only merges.
    """
    from repro.parallel.shard import plan_shards

    bounds = plan_shards(run.num_rows, pctx.workers)
    plan = [list(bound) for bound in bounds]
    completed: dict = {}
    if (
        state is not None
        and state.get("phase") == "build-shards"
        and state.get("shard_bounds") == plan
    ):
        completed = {
            int(index): value
            for index, value in (state.get("shards") or {}).items()
            if isinstance(value, (bytes, bytearray))
        }
    shards = dict(completed)
    phase_start = time.perf_counter()

    def payload() -> dict:
        run.stats.build_seconds = run.prior_build_seconds + (
            time.perf_counter() - phase_start
        )
        data = run._base_payload("build-shards")
        data["shard_bounds"] = plan
        data["shards"] = dict(shards)
        data["build_seconds"] = run.stats.build_seconds
        return data

    def on_shard_done(index: int, frozen) -> None:
        if not isinstance(frozen, (bytes, bytearray)):
            # Spill-mode builds pass file paths; their durability is the
            # spill file itself, not checkpoint payload bytes.
            return
        shards[index] = frozen
        run.stop_if_requested(payload)
        # Build-shards progress for the cadence: shards completed (due()
        # treats the smaller search-phase restart as a phase change).
        if run.manager.due(len(shards)):
            run.write(payload(), required=False)

    return pctx.build_tree(
        stats=run.stats.tree,
        budget=meter,
        completed_shards=completed,
        on_shard_done=on_shard_done,
    )


def _build_serial_checkpointed(
    run: _CheckpointedRun,
    permuted: List[tuple],
    state: Optional[dict],
    config: GordianConfig,
    meter: Optional[BudgetMeter],
) -> PrefixTree:
    """Serial single-pass build with periodic durable snapshots.

    Insertion is deterministic row order, so ``rows_done`` plus the frozen
    partial tree reconstructs the exact mid-build state: thaw, then keep
    inserting from where the checkpoint left off.
    """
    from repro.parallel.shard import thaw_into_tree

    # The meter is NOT wired into the tree here: an intra-insert trip would
    # leave a half-inserted row (a cell without its child) that cannot be
    # frozen into the trip-time checkpoint.  Allocations are instead charged
    # from the stats delta at each row boundary, where the tree is always a
    # consistent prefix of the build.
    tree = PrefixTree(run.num_attributes, stats=run.stats.tree)
    if meter is not None:
        meter.attach_tree_stats(run.stats.tree)
    charged_nodes = 0

    def charge_nodes() -> None:
        nonlocal charged_nodes
        if meter is None:
            return
        created = run.stats.tree.nodes_created
        while charged_nodes < created:
            charged_nodes += 1
            meter.on_node()

    rows_done = 0
    if state is not None and state["phase"] == "build" and state.get("rows_done"):
        rows_done = int(state["rows_done"])
        # check_duplicates off: a partial tree legitimately repeats leaf
        # counts only when the full dataset has duplicates, and those are
        # re-detected by the remaining inserts.
        thaw_into_tree(
            state["tree"], tree, rows_done, check_duplicates=False
        )

    phase_start = time.perf_counter()

    def payload() -> dict:
        run.stats.build_seconds = run.prior_build_seconds + (
            time.perf_counter() - phase_start
        )
        return run.build_payload(rows_done, tree)

    insert = tree.insert
    try:
        # The thawed nodes re-charge before the first new insert — this is
        # why BudgetMeter.preload deliberately skips ``nodes_allocated``.
        charge_nodes()
        for index in range(rows_done, len(permuted)):
            insert(permuted[index])
            rows_done = index + 1
            charge_nodes()
            if meter is not None:
                meter.on_row()
            if rows_done % _BUILD_BATCH == 0:
                run.stop_if_requested(payload)
                # Build-phase progress: rows inserted.  The search phase
                # restarts the cadence with its own counter (due() treats a
                # smaller progress value as a phase change).
                if run.manager.due(rows_done):
                    run.write(payload(), required=False)
    except (BudgetExceededError, KeyboardInterrupt):
        # Land the partial tree so a resume re-inserts only the tail; the
        # pipeline's exception handling enriches and re-raises as usual.
        run.write_best_effort(payload)
        raise
    run.stop_if_requested(payload)
    return tree

"""Frozen pre-optimization reference implementation of the GORDIAN hot path.

This module preserves, verbatim in behavior, the recursive
``merge_nodes``/``_visit`` pair and the O(cells) ``entity_count``
recomputation that the performance layer replaced.  It exists for two
reasons:

* **Differential testing** — the property suite runs the optimized pipeline
  and this reference on the same rows and asserts identical minimal keys
  and non-key sets, so any soundness bug in encoding, memoization, or the
  iterative rewrites shows up as a concrete counterexample.
* **Honest speedup measurement** — ``scripts/bench_regression.py`` times the
  optimized pipeline against this baseline.  Timing against a frozen
  in-tree implementation (rather than a config flag of the new code) keeps
  the reported speedup anchored to what the code actually did before the
  performance layer landed.

Nothing outside tests and benchmarks should import this module; it is
deliberately recursive and deliberately recomputes entity counts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core import bitset
from repro.core.gordian import (
    GordianConfig,
    GordianResult,
    _order_attributes,
    _translate_mask,
)
from repro.core.key_conversion import keys_from_nonkey_masks
from repro.core.nonkey_finder import PruningConfig
from repro.core.prefix_tree import Cell, Node, PrefixTree, build_prefix_tree
from repro.core.stats import RunStats, SearchStats
from repro.errors import NoKeysExistError

__all__ = [
    "merge_nodes_reference",
    "merge_children_reference",
    "ReferenceNonKeyFinder",
    "find_keys_reference",
]


def _entity_count(node: Node) -> int:
    """The pre-optimization O(cells) entity count (old ``Node.entity_count``)."""
    return sum(cell.count for cell in node.cells.values())


class _ReferenceNonKeySet:
    """The pre-optimization NonKeySet: covering scans through
    ``bitset.covers`` generator expressions, no precomputed complements."""

    def __init__(self, num_attributes: int):
        self.num_attributes = num_attributes
        self._nonkeys: List[int] = []
        self.insert_attempts = 0
        self.insert_accepted = 0

    def __len__(self) -> int:
        return len(self._nonkeys)

    def masks(self) -> List[int]:
        return list(self._nonkeys)

    def insert(self, nonkey: int) -> bool:
        self.insert_attempts += 1
        for stored in self._nonkeys:
            if bitset.covers(stored, nonkey):
                return False
        self._nonkeys = [
            stored for stored in self._nonkeys if not bitset.covers(nonkey, stored)
        ]
        self._nonkeys.append(nonkey)
        self.insert_accepted += 1
        return True

    def is_covered(self, mask: int) -> bool:
        return any(bitset.covers(stored, mask) for stored in self._nonkeys)


def merge_nodes_reference(
    tree: PrefixTree,
    to_merge: Sequence[Node],
    stats: Optional[SearchStats] = None,
) -> Node:
    """Recursive Algorithm 3, exactly as it stood before the iterative rewrite."""
    if not to_merge:
        raise ValueError("merge_nodes requires at least one node")
    if stats is not None:
        stats.merges_performed += 1
        stats.merge_nodes_input += len(to_merge)
    if len(to_merge) == 1:
        return to_merge[0]

    level = to_merge[0].level
    merged = tree.new_node(level)
    is_leaf = to_merge[0].is_leaf

    if is_leaf:
        for node in to_merge:
            for value, cell in node.cells.items():
                existing = merged.cells.get(value)
                if existing is None:
                    merged.cells[value] = Cell(value, cell.count)
                    tree.stats.on_cells_created()
                else:
                    existing.count += cell.count
        merged.entity_count = _entity_count(merged)
    else:
        groups: dict = {}
        for node in to_merge:
            for value, cell in node.cells.items():
                groups.setdefault(value, []).append(cell)
        total = 0
        for value, cells in groups.items():
            partial: List[Node] = [cell.child for cell in cells]
            child = merge_nodes_reference(tree, partial, stats=stats)
            count = sum(cell.count for cell in cells)
            new_cell = Cell(value, count)
            new_cell.child = tree.acquire(child)
            merged.cells[value] = new_cell
            total += count
            tree.stats.on_cells_created()
        merged.entity_count = total
    return merged


def merge_children_reference(
    tree: PrefixTree,
    node: Node,
    stats: Optional[SearchStats] = None,
) -> Node:
    """Project out ``node``'s level by merging its cells' children."""
    children = [cell.child for cell in node.cells.values()]
    if any(child is None for child in children):
        raise ValueError("cannot merge the children of a leaf node")
    return merge_nodes_reference(tree, children, stats=stats)


class ReferenceNonKeyFinder:
    """The doubly recursive Algorithm 4, pre-optimization.

    Single-entity pruning recomputes the entity count by summing cell
    counts on every check, exactly like the old ``Node.entity_count``
    property did.
    """

    def __init__(
        self,
        tree: PrefixTree,
        pruning: Optional[PruningConfig] = None,
        stats: Optional[SearchStats] = None,
    ):
        self.tree = tree
        self.pruning = pruning if pruning is not None else PruningConfig()
        self.stats = stats if stats is not None else SearchStats()
        self.nonkeys = _ReferenceNonKeySet(tree.num_attributes)
        self._cur_nonkey = bitset.EMPTY
        self._num_attributes = tree.num_attributes

    def run(self) -> NonKeySet:
        if self.tree.num_entities == 0:
            return self.nonkeys
        self._visit(self.tree.root, 0)
        return self.nonkeys

    def _add_nonkey(self, mask: int) -> None:
        if mask == bitset.EMPTY:
            return
        self.stats.nonkeys_discovered += 1
        if self.nonkeys.insert(mask):
            self.stats.nonkeys_inserted += 1

    def _visit(self, root: Node, attr_no: int) -> None:
        root.visited = True
        self.stats.nodes_visited += 1
        cur_with_attr = self._cur_nonkey | bitset.singleton(attr_no)
        self._cur_nonkey = cur_with_attr

        if root.is_leaf:
            self.stats.leaf_nodes_visited += 1
            for cell in root.cells.values():
                if cell.count != 1:
                    self._add_nonkey(cur_with_attr)
                    break
            self._cur_nonkey = cur_with_attr & ~bitset.singleton(attr_no)
            only_cell_count = (
                next(iter(root.cells.values())).count if len(root.cells) == 1 else 0
            )
            if len(root.cells) > 1 or only_cell_count > 1:
                self._add_nonkey(self._cur_nonkey)
            return

        if self.pruning.single_entity and _entity_count(root) == 1:
            self._cur_nonkey = cur_with_attr & ~bitset.singleton(attr_no)
            self.stats.single_entity_prunings += 1
            return

        for cell in root.cells.values():
            child = cell.child
            if self.pruning.singleton and child.visited:
                self.stats.singleton_prunings_shared += 1
                continue
            self._visit(child, attr_no + 1)

        self._cur_nonkey = cur_with_attr & ~bitset.singleton(attr_no)

        if self.pruning.singleton and len(root.cells) == 1:
            self.stats.singleton_prunings_one_cell += 1
            return
        if self.pruning.futility and self._is_futile(attr_no):
            self.stats.futility_prunings += 1
            return
        merged = merge_children_reference(self.tree, root, stats=self.stats)
        if merged.visited:
            if self.pruning.singleton:
                self.stats.singleton_prunings_shared += 1
                return
        self.tree.acquire(merged)
        try:
            self._visit(merged, attr_no + 1)
        finally:
            self.tree.discard(merged)

    def _is_futile(self, attr_no: int) -> bool:
        reachable = self._cur_nonkey | bitset.suffix_mask(
            attr_no + 1, self._num_attributes
        )
        return self.nonkeys.is_covered(reachable)


def find_keys_reference(
    rows: Sequence[Sequence[object]],
    num_attributes: Optional[int] = None,
    pruning: Optional[PruningConfig] = None,
) -> GordianResult:
    """End-to-end pre-optimization pipeline: no encoding, no memoization,
    recursive traversal, O(cells) entity counts.

    Mirrors ``find_keys`` closely enough that results (keys, non-keys,
    attribute order) are directly comparable, while exercising only the
    frozen reference hot path.
    """
    rows = list(rows)
    if num_attributes is None:
        num_attributes = len(rows[0]) if rows else 0
    config = GordianConfig(encode=False, merge_cache=False)
    stats = RunStats()
    level_to_attr = _order_attributes(rows, num_attributes, config.attribute_order)
    try:
        tree = build_prefix_tree(
            ([row[a] for a in level_to_attr] for row in rows),
            num_attributes,
            stats=stats.tree,
        )
    except NoKeysExistError:
        return GordianResult(
            keys=[],
            nonkeys=[tuple(range(num_attributes))],
            num_attributes=num_attributes,
            num_entities=len(rows),
            no_keys_exist=True,
            attribute_order=level_to_attr,
            stats=stats,
        )
    finder = ReferenceNonKeyFinder(tree, pruning=pruning, stats=stats.search)
    nonkey_set = finder.run()
    key_masks = keys_from_nonkey_masks(nonkey_set.masks(), num_attributes)
    keys = sorted(
        (_translate_mask(mask, level_to_attr) for mask in key_masks),
        key=lambda k: (len(k), k),
    )
    nonkeys = sorted(
        (_translate_mask(mask, level_to_attr) for mask in nonkey_set.masks()),
        key=lambda k: (len(k), k),
    )
    return GordianResult(
        keys=keys,
        nonkeys=nonkeys,
        num_attributes=num_attributes,
        num_entities=len(rows),
        no_keys_exist=False,
        attribute_order=level_to_attr,
        stats=stats,
    )

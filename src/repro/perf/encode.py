"""Columnar dictionary encoding for the prefix-tree build.

The prefix tree only ever compares values for equality, so any injective
per-column recoding leaves GORDIAN's answer untouched while changing the
constant factors a lot: dense integer codes hash in a few cycles, intern
nothing, and keep cell dictionaries compact.  The encoder is a single pass
(one dict lookup per field) and returns one :class:`ColumnCodec` per column
whose decode table maps codes back to original values and whose length is
exactly the column cardinality — which the attribute-ordering heuristic
reuses instead of re-scanning every column.

This module is deliberately dependency-free (no ``repro.dataset`` imports):
:mod:`repro.dataset.encoding` layers the :class:`Table`-level API on top.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = [
    "ColumnCodec",
    "StreamingEncoder",
    "encode_columns",
    "decode_row",
    "transpose_rows",
]


class ColumnCodec:
    """Bidirectional value <-> dense-code mapping for one column."""

    __slots__ = ("value_to_code", "code_to_value")

    def __init__(
        self,
        value_to_code: Dict[object, int],
        code_to_value: List[object],
    ):
        self.value_to_code = value_to_code
        self.code_to_value = code_to_value

    def encode(self, value: object) -> int:
        """Code for ``value``, assigning the next dense code if unseen."""
        table = self.value_to_code
        code = table.get(value)
        if code is None:
            code = len(table)
            table[value] = code
            self.code_to_value.append(value)
        return code

    def decode(self, code: int) -> object:
        return self.code_to_value[code]

    def __len__(self) -> int:
        return len(self.code_to_value)

    @property
    def cardinality(self) -> int:
        return len(self.code_to_value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnCodec({len(self)} values)"


class StreamingEncoder:
    """Growable streaming dictionary over a fixed-width row stream.

    The out-of-core ingest cannot afford :func:`encode_columns`'s
    "materialize every row first" contract, so this encoder consumes rows
    one at a time and grows its per-column code tables as new values
    arrive.  Codes are assigned in first-seen row order — exactly the
    order :func:`encode_columns` assigns them — so feeding the same rows
    in any batch split produces byte-identical codes, which is what lets
    the out-of-core pipeline gate its answers bit-identical against the
    in-memory path (property-tested in ``tests/oocore``).
    """

    __slots__ = ("num_attributes", "codecs", "_columns")

    def __init__(self, num_attributes: int):
        self.num_attributes = num_attributes
        tables: List[Dict[object, int]] = [{} for _ in range(num_attributes)]
        decodes: List[List[object]] = [[] for _ in range(num_attributes)]
        self.codecs = [ColumnCodec(t, d) for t, d in zip(tables, decodes)]
        self._columns = list(zip(tables, decodes))

    def encode_row(self, row: Sequence[object]) -> Tuple[int, ...]:
        """Codes for one row, assigning fresh codes to unseen values."""
        code_row: List[int] = []
        push = code_row.append
        for value, (table, decode) in zip(row, self._columns):
            code = table.get(value)
            if code is None:
                code = len(decode)
                table[value] = code
                decode.append(value)
            push(code)
        return tuple(code_row)

    @property
    def cardinalities(self) -> List[int]:
        """Distinct values seen so far in each column."""
        return [len(codec) for codec in self.codecs]


def encode_columns(
    rows: Sequence[Sequence[object]], num_attributes: int
) -> Tuple[List[Tuple[int, ...]], List[ColumnCodec]]:
    """Dictionary-encode every column of ``rows`` in one pass.

    Returns the encoded rows (tuples of dense ints, first-seen order per
    column) and one :class:`ColumnCodec` per column.  Codes are assigned in
    row order, so the output is deterministic for a given row sequence.
    """
    tables: List[Dict[object, int]] = [{} for _ in range(num_attributes)]
    decodes: List[List[object]] = [[] for _ in range(num_attributes)]
    columns = list(zip(tables, decodes))
    encoded: List[Tuple[int, ...]] = []
    append = encoded.append
    for row in rows:
        code_row: List[int] = []
        push = code_row.append
        for value, (table, decode) in zip(row, columns):
            code = table.get(value)
            if code is None:
                code = len(decode)
                table[value] = code
                decode.append(value)
            push(code)
        append(tuple(code_row))
    return encoded, [ColumnCodec(t, d) for t, d in columns]


def transpose_rows(
    rows: Sequence[Sequence[int]], num_attributes: int
) -> List[Tuple[int, ...]]:
    """Row-major encoded rows -> one tuple per column (column-major).

    The parallel backend packs encoded rows column-major into shared
    memory (:mod:`repro.parallel.shard`); a bare ``zip(*rows)`` does the
    transposition in C, and the ``num_attributes`` parameter covers the
    zero-row edge case where ``zip`` alone would lose the column count.
    """
    if not rows:
        return [() for _ in range(num_attributes)]
    return list(zip(*rows))


def decode_row(
    code_row: Sequence[int], codecs: Sequence[ColumnCodec]
) -> Tuple[object, ...]:
    """Map one encoded row back to its original values."""
    return tuple(codec.code_to_value[code] for code, codec in zip(code_row, codecs))

"""Memoization of prefix-tree merges.

The NonKeyFinder traversal repeatedly merges *the same* groups of nodes:
overlapping slices of the cube project overlapping subtree families, and on
correlated data the identical id-tuple shows up over and over.  The cache
maps ``tuple(id(node) for node in to_merge)`` to the merged result so a
repeat costs one dict probe instead of rebuilding (and re-traversing) the
whole merged subtree.

Keying by object identity is only sound while every member is alive — ids
are recycled the moment CPython frees an object.  The cache therefore
registers a free listener on the owning :class:`~repro.core.prefix_tree.
PrefixTree`: the instant reference counting frees any node, every entry
whose key mentions that node (as an input *or* as the cached result) is
dropped.  Cached results are themselves reference-acquired by the cache, so
they cannot be freed while an entry points at them.

Most merge id-tuples never repeat, and storing an entry is far more
expensive than probing (a reference acquire plus inverted-index upkeep), so
the cache is *two-request*: on the first request for a key,
:meth:`~MergeCache.note_miss` only records it in a bounded ``_seen`` filter
and tells the caller not to store; on the second request it asks for the
:meth:`~MergeCache.store`.  Workloads with no merge reuse therefore pay one
set-add per merge instead of a full store/evict cycle, while workloads with
real reuse still converge to hits from the third request on.  (A stale
``_seen`` key whose ids were recycled merely causes an early store, which
is always sound.)

The cache also **self-tunes**: most workloads either reuse merges heavily
or not at all, and the split is visible early.  After
:data:`AUTOTUNE_PROBES` probes the cache inspects its own hit rate once;
below :data:`AUTOTUNE_MIN_RATE` it *disables itself* — entries and the
``_seen`` filter are dropped, ``disabled`` flips, and
:func:`~repro.core.merge.merge_nodes` (which re-reads the flag on every
call) stops building identity keys and probing altogether.  On workloads
with no reuse this recovers nearly the whole probe/store overhead while
leaving reuse-heavy workloads untouched; disabling can never change
results, only how often a merge is rebuilt.  The decision is mirrored into
``SearchStats.merge_cache_autodisables`` so profiles show it happened.

Memory is bounded twice over:

* a hard ``max_entries`` / ``max_bytes`` cap with LRU eviction on insert
  (the ``_seen`` filter is clamped separately and clears wholesale when
  full);
* cooperative pressure shedding — :meth:`evict_one` lets an attached
  :class:`~repro.robustness.BudgetMeter` drain the cache LRU-first before
  declaring a ``max_bytes`` budget violation, so a tight ``--max-memory-mb``
  degrades cache effectiveness instead of killing the run.

Hit/miss/eviction counters are mirrored into the run's ``SearchStats`` so
``--profile`` and the regression harness can report them.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

__all__ = ["MergeCache", "ENTRY_BYTES", "MEMBER_BYTES"]

#: Estimated bookkeeping cost of one cache entry (dict slots, LRU links).
ENTRY_BYTES = 256
#: Estimated per-member cost (key tuple slot + inverted-index entry).
MEMBER_BYTES = 96
#: Estimated cost of one key in the two-request ``_seen`` filter.
SEEN_BYTES = 120
#: Keys remembered by the ``_seen`` filter before it clears wholesale.
SEEN_CAP = 1 << 16
#: Probes observed before the one-shot self-tuning decision is made.
AUTOTUNE_PROBES = 8192
#: Hit rate below which the cache disables itself at the decision point.
AUTOTUNE_MIN_RATE = 0.05

_Key = Tuple[int, ...]


class MergeCache:
    """Bounded, refcount-aware memo table for :func:`~repro.core.merge.merge_nodes`.

    Parameters
    ----------
    max_entries:
        Hard cap on stored merges; the least recently used entry is evicted
        first.  ``None`` means unbounded (the byte cap may still apply).
    max_bytes:
        Cap on the cache's estimated bookkeeping bytes (the retained merged
        subtrees are already priced by the tree's ``TreeStats``, which the
        budget meter reads separately).
    stats:
        Optional ``SearchStats``; hit/miss/eviction counters are mirrored
        into ``merge_cache_hits`` / ``merge_cache_misses`` /
        ``merge_cache_evictions`` when given.
    autotune:
        When true (the default), the cache evaluates its hit rate once
        after :data:`AUTOTUNE_PROBES` probes and disables itself below
        :data:`AUTOTUNE_MIN_RATE` — see the module docstring.  Tests that
        assert steady-state cache behavior can switch it off.
    """

    def __init__(
        self,
        max_entries: Optional[int] = 4096,
        max_bytes: Optional[int] = None,
        stats: Optional[object] = None,
        autotune: bool = True,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = stats
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: True once the self-tuning decision switched the cache off.
        self.disabled = False
        self._autotune_left = AUTOTUNE_PROBES if autotune else None
        self._tree = None
        self._entries: Dict[_Key, object] = {}  # insertion order == LRU order
        self._costs: Dict[_Key, int] = {}
        self._by_member: Dict[int, Set[_Key]] = {}
        self._seen: Set[_Key] = set()
        self._total_bytes = 0
        self._pending: list = []
        self._draining = False

    # ------------------------------------------------------------------
    # wiring

    def bind(self, tree) -> None:
        """Attach to the owning tree (idempotent).

        Registers the free listener that keeps identity keys sound and
        remembers the tree so evicted results can be reference-released.
        """
        if self._tree is tree:
            return
        if self._tree is not None:
            raise ValueError("a MergeCache serves exactly one PrefixTree")
        self._tree = tree
        # ``_by_member`` doubles as the watch set: it holds exactly the ids
        # whose death invalidates an entry, so the tree skips the listener
        # call for every other freed node.
        tree.add_free_listener(self._on_node_freed, watched=self._by_member)

    # ------------------------------------------------------------------
    # introspection

    def __len__(self) -> int:
        return len(self._entries)

    def estimated_bytes(self) -> int:
        """Estimated bookkeeping bytes currently held by the cache."""
        return self._total_bytes + len(self._seen) * SEEN_BYTES

    def counters(self) -> Dict[str, int]:
        return {
            "entries": len(self._entries),
            "bytes": self._total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    # ------------------------------------------------------------------
    # the memo protocol (called from merge_nodes)

    def probe(self, key: _Key):
        """One-call combination of :meth:`lookup` and :meth:`note_miss`.

        Returns ``(node, False)`` on a hit and ``(None, store_wanted)`` on
        a miss — one method call per merge instead of two on the (dominant)
        miss path.
        """
        if self.disabled:
            # ``merge_nodes`` re-checks the flag per call, but sub-merges of
            # the call that tripped the decision still land here.
            return None, False
        left = self._autotune_left
        if left is not None:
            if left <= 1:
                self._autotune()
                if self.disabled:
                    return None, False
            else:
                self._autotune_left = left - 1
        entries = self._entries
        node = entries.get(key)
        if node is not None:
            del entries[key]
            entries[key] = node
            self.hits += 1
            if self.stats is not None:
                self.stats.merge_cache_hits += 1
            return node, False
        self.misses += 1
        if self.stats is not None:
            self.stats.merge_cache_misses += 1
        seen = self._seen
        if key in seen:
            seen.discard(key)
            return None, True
        if len(seen) >= SEEN_CAP:
            seen.clear()
        seen.add(key)
        return None, False

    def _autotune(self) -> None:
        """One-shot self-tuning decision after the probe window closes.

        A hopeless hit rate disables the cache for the rest of the run
        (dropping every entry and the ``_seen`` filter); a healthy one
        graduates the cache — no further checks.  One decision point keeps
        the behavior deterministic for the equivalence suites.
        """
        self._autotune_left = None
        attempts = self.hits + self.misses
        if attempts and self.hits / attempts >= AUTOTUNE_MIN_RATE:
            return
        self.disabled = True
        self.clear()
        self._seen.clear()
        if self.stats is not None:
            self.stats.merge_cache_autodisables += 1

    def lookup(self, key: _Key):
        """Cached merged node for ``key``, or ``None``; refreshes LRU order."""
        entries = self._entries
        node = entries.get(key)
        if node is None:
            self.misses += 1
            if self.stats is not None:
                self.stats.merge_cache_misses += 1
            return None
        # Move to the back of the insertion order (most recently used).
        del entries[key]
        entries[key] = node
        self.hits += 1
        if self.stats is not None:
            self.stats.merge_cache_hits += 1
        return node

    def note_miss(self, key: _Key) -> bool:
        """Record a missed key; ``True`` when the result should be stored.

        Implements the two-request policy: the first request only marks the
        key in the bounded ``_seen`` filter (a set-add, an order of
        magnitude cheaper than a full store), the second request asks the
        caller to :meth:`store` the merge it is about to build.
        """
        seen = self._seen
        if key in seen:
            seen.discard(key)
            return True
        if len(seen) >= SEEN_CAP:
            seen.clear()
        seen.add(key)
        return False

    def store(self, key: _Key, node) -> None:
        """Memoize ``node`` as the merge of the ``key`` id-tuple.

        The node is reference-acquired by the cache and released on
        eviction/invalidation.  Inserting past a cap evicts LRU-first.
        """
        if self._tree is None:
            raise ValueError("MergeCache.store before bind(tree)")
        if self.disabled:
            # A store queued behind sub-merges can land after the autotune
            # decision disabled the cache mid-merge; drop it.
            return
        if key in self._entries:  # pragma: no cover - defensive; store once
            return
        cost = ENTRY_BYTES + MEMBER_BYTES * (len(key) + 1)
        self._tree.acquire(node)
        self._entries[key] = node
        self._costs[key] = cost
        self._total_bytes += cost
        by_member = self._by_member
        for member_id in key:
            by_member.setdefault(member_id, set()).add(key)
        # The result node is itself a member: if it is ever freed (it can
        # only be freed after this entry is removed, but it may also key
        # *other* entries as an input), its id must invalidate them.
        by_member.setdefault(id(node), set()).add(key)
        while (
            (self.max_entries is not None and len(self._entries) > self.max_entries)
            or (self.max_bytes is not None and self._total_bytes > self.max_bytes)
        ):
            if not self.evict_one():  # pragma: no cover - cannot stall: len >= 1
                break

    # ------------------------------------------------------------------
    # eviction and invalidation

    def evict_one(self) -> bool:
        """Evict the least recently used entry; ``False`` when empty.

        Also the pressure-shedding hook for the budget meter: releasing the
        entry drops the cache's reference on the merged subtree, freeing
        every node of it not shared elsewhere (which in turn invalidates any
        entry keyed on those nodes).
        """
        try:
            key = next(iter(self._entries))
        except StopIteration:
            if self._seen:
                # Last pressure valve: the two-request filter is the only
                # remaining footprint — drop it wholesale.
                self._seen.clear()
                return True
            return False
        self.evictions += 1
        if self.stats is not None:
            self.stats.merge_cache_evictions += 1
        self._remove(key)
        return True

    def clear(self) -> None:
        """Drop every entry (releasing the cached subtrees)."""
        while self.evict_one():
            pass

    def _remove(self, key: _Key) -> None:
        """Remove one entry and release its node; reentrancy-safe.

        The entry is unlinked from every index *before* the node reference
        is dropped, because the discard can recursively free member nodes
        and re-enter :meth:`_on_node_freed`.
        """
        node = self._entries.pop(key, None)
        if node is None:
            return
        self._total_bytes -= self._costs.pop(key)
        by_member = self._by_member
        for member_id in key + (id(node),):
            keys = by_member.get(member_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del by_member[member_id]
        self._tree.discard(node)

    def _on_node_freed(self, node) -> None:
        """Free listener: a node died, so its id no longer names it.

        Invalidation can cascade (dropping an entry releases its subtree,
        whose freed nodes key further entries), so stale keys are drained
        from an explicit queue instead of recursing — a chain of dependent
        entries costs stack depth O(1), not O(chain).
        """
        keys = self._by_member.pop(id(node), None)
        if not keys:
            return
        self._pending.extend(keys)
        if self._draining:
            return
        self._draining = True
        try:
            while self._pending:
                key = self._pending.pop()
                if key in self._entries:
                    self.invalidations += 1
                    self._remove(key)
        finally:
            self._draining = False

"""Packed-bitmap kernels for the NonKeySet antichain scans.

The futility query (``NonKeySet.is_covered``) and the insert/evict scans
walk the stored antichain one Python int at a time; on real workloads the
memo-missed queries alone AND millions of masks per run.  This module packs
the antichain into a contiguous array of 64-bit words — row ``i`` holds the
``ceil(d / 64)``-word bitmap of entry ``i`` — so one batched
``np.bitwise_and`` plus a reduction replaces the whole inner loop.

Two implementations share one API:

* :class:`PackedAntichain` — the numpy kernel.  Masks are stored as
  ``uint64`` words (``uint64`` and not ``int64`` so attribute 63 of a
  64-wide schema does not overflow the signed conversion); schemas wider
  than 64 attributes use multiple words per row and reduce across the word
  axis.
* :class:`PyAntichain` — the pure-Python fallback, used when numpy is
  absent and as the reference the property tests compare the kernel
  against.  Its loops are the specification: the kernel must answer every
  query identically.

:class:`~repro.core.nonkey_set.NonKeySet` keeps its Python lists as the
source of truth (iteration, snapshots, checkpoints all read them) and
mirrors them into one of these kernels for the scans; :func:`make_kernel`
picks the implementation.  Every operation is exact — the kernel is a
faster representation, never an approximation — so routing through it can
never change a coverage verdict.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

try:  # pragma: no cover - exercised by the fallback tests via make_kernel
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI
    _np = None

__all__ = [
    "HAVE_NUMPY",
    "WORD_BITS",
    "words_for",
    "mask_to_words",
    "words_to_mask",
    "PackedAntichain",
    "PyAntichain",
    "make_kernel",
]

HAVE_NUMPY = _np is not None
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1

# Cap on the (queries x block x words) intermediate of the batched cover
# scan, in words.  8 MiB of uint64s — big enough that wide antichains scan
# in a handful of numpy calls, small enough to stay cache-friendly.
_BATCH_BLOCK_WORDS = 1 << 20


def _pack_rows(masks: Sequence[int], words: int):
    """Pack masks into an ``(len(masks), words)`` uint64 matrix."""
    n = len(masks)
    if words == 1:
        return _np.fromiter(masks, dtype=_np.uint64, count=n).reshape(n, 1)
    buf = b"".join(mask.to_bytes(words * 8, "little") for mask in masks)
    return _np.frombuffer(buf, dtype="<u8").reshape(n, words)


def words_for(num_attributes: int) -> int:
    """Words needed to hold a ``num_attributes``-bit mask."""
    return (num_attributes + WORD_BITS - 1) // WORD_BITS


def mask_to_words(mask: int, words: int) -> List[int]:
    """Split a Python int bitmask into ``words`` little-endian 64-bit words."""
    return [(mask >> (WORD_BITS * i)) & _WORD_MASK for i in range(words)]


def words_to_mask(chunk: Sequence[int]) -> int:
    """Inverse of :func:`mask_to_words`."""
    mask = 0
    for i, word in enumerate(chunk):
        mask |= int(word) << (WORD_BITS * i)
    return mask


class PackedAntichain:
    """Size-sorted packed mirror of a NonKeySet antichain (numpy kernel).

    Row ``i`` mirrors entry ``i`` of the owner's size-sorted lists: the
    ``comp`` plane holds the entry's *complement* (the cover scan tests
    ``mask & complement == 0``) and the ``nk`` plane the non-key itself
    (the evict scan tests ``nonkey & inverse == 0``).  The owner performs
    every structural mutation through :meth:`insert` / :meth:`delete`, so
    the planes stay in lockstep with its lists by construction.
    """

    def __init__(self, num_attributes: int, capacity: int = 64):
        self._words = words_for(num_attributes)
        self._n = 0
        capacity = max(capacity, 1)
        self._comp = _np.zeros((capacity, self._words), dtype=_np.uint64)
        self._nk = _np.zeros((capacity, self._words), dtype=_np.uint64)

    def __len__(self) -> int:
        return self._n

    # -- mutation --------------------------------------------------------

    def _row(self, mask: int):
        if self._words == 1:
            return _np.uint64(mask)
        # to_bytes + frombuffer skips the per-word Python shift/mask loop;
        # little-endian bytes reinterpreted as <u8 give the same word order
        # as mask_to_words.
        return _np.frombuffer(mask.to_bytes(self._words * 8, "little"), dtype="<u8")

    def _grow(self) -> None:
        capacity = self._comp.shape[0] * 2
        for name in ("_comp", "_nk"):
            plane = getattr(self, name)
            bigger = _np.zeros((capacity, self._words), dtype=_np.uint64)
            bigger[: self._n] = plane[: self._n]
            setattr(self, name, bigger)

    def insert(self, index: int, nonkey: int, complement: int) -> None:
        """Insert an entry at ``index``, shifting later rows down."""
        if self._n == self._comp.shape[0]:
            self._grow()
        n = self._n
        if index < n:
            self._comp[index + 1 : n + 1] = self._comp[index:n]
            self._nk[index + 1 : n + 1] = self._nk[index:n]
        self._comp[index] = self._row(complement)
        self._nk[index] = self._row(nonkey)
        self._n = n + 1

    def delete(self, indices: Sequence[int]) -> None:
        """Remove the entries at ``indices`` (ascending), compacting rows."""
        if not indices:
            return
        n = self._n
        keep = _np.ones(n, dtype=bool)
        keep[list(indices)] = False
        kept = int(keep.sum())
        self._comp[:kept] = self._comp[:n][keep]
        self._nk[:kept] = self._nk[:n][keep]
        self._n = kept

    def rebuild(self, nonkeys: Sequence[int], complements: Sequence[int]) -> None:
        """Bulk-load from parallel (already size-sorted) mask lists."""
        n = len(nonkeys)
        capacity = self._comp.shape[0]
        while capacity < n:
            capacity *= 2
        if capacity != self._comp.shape[0]:
            self._comp = _np.zeros((capacity, self._words), dtype=_np.uint64)
            self._nk = _np.zeros((capacity, self._words), dtype=_np.uint64)
        if n:
            words = self._words
            if words == 1:
                self._comp[:n, 0] = _np.fromiter(
                    complements, dtype=_np.uint64, count=n
                )
                self._nk[:n, 0] = _np.fromiter(nonkeys, dtype=_np.uint64, count=n)
            else:
                self._comp[:n] = _pack_rows(complements, words)
                self._nk[:n] = _pack_rows(nonkeys, words)
        self._n = n

    # -- scans -----------------------------------------------------------

    def any_covering(self, mask: int, cut: int) -> bool:
        """True iff some complement row in ``[0, cut)`` ANDs to zero with
        ``mask`` — i.e. some stored non-key at least as large covers it."""
        if cut <= 0:
            return False
        if self._words == 1:
            column = self._comp[:cut, 0]
            return bool((column & _np.uint64(mask) == 0).any())
        # Column-wise accumulation: one (cut,) temp per word instead of a
        # (cut, words) plane plus an axis reduction — a row covers iff the
        # OR of its per-word ANDs is zero.
        row = self._row(mask)
        chunk = self._comp[:cut]
        acc = chunk[:, 0] & row[0]
        for w in range(1, self._words):
            acc |= chunk[:, w] & row[w]
        return bool((acc == 0).any())

    def covered_indices(self, inverse: int, start: int) -> List[int]:
        """Ascending indices ``i`` in ``[start, n)`` whose stored non-key is
        covered by the newcomer — ``nonkey & inverse == 0`` (evict scan)."""
        n = self._n
        if start >= n:
            return []
        if self._words == 1:
            hits = (self._nk[start:n, 0] & _np.uint64(inverse)) == 0
        else:
            row = self._row(inverse)
            chunk = self._nk[start:n]
            acc = chunk[:, 0] & row[0]
            for w in range(1, self._words):
                acc |= chunk[:, w] & row[w]
            hits = acc == 0
        return [start + int(i) for i in _np.nonzero(hits)[0]]

    def covered_flags(self, masks: Sequence[int]) -> List[bool]:
        """``[any stored complement ANDs to zero with m]`` for each mask.

        The batched form of :meth:`any_covering` over the *whole* antichain:
        one packed query matrix is scanned against the complement plane in
        blocks, amortizing per-call numpy dispatch over the entire batch.
        Scanning past the size cut is exact — a strictly smaller stored
        non-key can never cover a larger query, so the extra rows simply
        never report coverage.
        """
        m = len(masks)
        n = self._n
        if m == 0:
            return []
        if n == 0:
            return [False] * m
        queries = _pack_rows(masks, self._words)
        hits = _np.zeros(m, dtype=bool)
        block = max(1, _BATCH_BLOCK_WORDS // max(1, m * self._words))
        for start in range(0, n, block):
            stop = min(n, start + block)
            chunk = self._comp[start:stop]
            # Column-wise accumulation: one (m, block) temp per word (a row
            # covers iff the OR of its per-word ANDs is zero) — an order of
            # magnitude cheaper than the 3-D plane + axis-2 reduction.
            acc = queries[:, 0][:, _np.newaxis] & chunk[:, 0][_np.newaxis, :]
            for w in range(1, self._words):
                acc |= queries[:, w][:, _np.newaxis] & chunk[:, w][_np.newaxis, :]
            hits |= (acc == 0).any(axis=1)
        return [bool(flag) for flag in hits]


class PyAntichain:
    """Pure-Python kernel with the identical contract (and the reference
    semantics the property tests hold :class:`PackedAntichain` to)."""

    def __init__(self, num_attributes: int, capacity: int = 64):
        self._comp: List[int] = []
        self._nk: List[int] = []

    def __len__(self) -> int:
        return len(self._nk)

    def insert(self, index: int, nonkey: int, complement: int) -> None:
        self._comp.insert(index, complement)
        self._nk.insert(index, nonkey)

    def delete(self, indices: Sequence[int]) -> None:
        for index in reversed(list(indices)):
            del self._comp[index]
            del self._nk[index]

    def rebuild(self, nonkeys: Sequence[int], complements: Sequence[int]) -> None:
        self._comp = list(complements)
        self._nk = list(nonkeys)

    def any_covering(self, mask: int, cut: int) -> bool:
        for complement in self._comp[:cut]:
            if mask & complement == 0:
                return True
        return False

    def covered_indices(self, inverse: int, start: int) -> List[int]:
        return [
            index
            for index in range(start, len(self._nk))
            if not self._nk[index] & inverse
        ]

    def covered_flags(self, masks: Sequence[int]) -> List[bool]:
        return [self.any_covering(mask, len(self._comp)) for mask in masks]


def make_kernel(num_attributes: int, vectorize: Optional[bool] = None):
    """Kernel for ``num_attributes``-bit antichains, or ``None`` when off.

    ``vectorize=None`` (auto, the default) uses the numpy kernel when numpy
    is importable and nothing otherwise — the owner then runs its original
    inline loops.  ``True`` forces a kernel (falling back to
    :class:`PyAntichain` without numpy, so the routed code path stays
    exercised); ``False`` disables routing entirely.
    """
    if vectorize is None:
        vectorize = HAVE_NUMPY
    if not vectorize:
        return None
    if HAVE_NUMPY:
        return PackedAntichain(num_attributes)
    return PyAntichain(num_attributes)

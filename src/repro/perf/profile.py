"""Per-phase timing and counter report for GORDIAN runs.

Backs the CLI ``--profile`` flag and the benchmark regression harness: one
compact, deterministic text block with the three pipeline phases' wall
times, the structural work counters (visits, merges, prunings), and the
merge-cache hit/miss/eviction figures, plus the budget snapshot when the
run was budgeted.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["render_profile"]


def _fmt_seconds(seconds: float, total: float) -> str:
    share = 0.0 if total <= 0 else 100.0 * seconds / total
    return f"{seconds:10.4f}s  {share:5.1f}%"


def render_profile(stats, attribute_order: Optional[List[int]] = None) -> str:
    """Render a :class:`~repro.core.stats.RunStats` as a profile report."""
    total = stats.total_seconds
    tree = stats.tree
    search = stats.search
    lines = ["-- profile " + "-" * 45]
    lines.append(f"  build    {_fmt_seconds(stats.build_seconds, total)}")
    lines.append(f"  search   {_fmt_seconds(stats.search_seconds, total)}")
    lines.append(f"  convert  {_fmt_seconds(stats.convert_seconds, total)}")
    lines.append(f"  total    {stats.total_seconds:10.4f}s")
    lines.append("-- tree")
    lines.append(
        f"  nodes created {tree.nodes_created}  cells created {tree.cells_created}"
        f"  peak live nodes {tree.peak_live_nodes}  peak live cells "
        f"{tree.peak_live_cells}"
    )
    lines.append("-- search")
    lines.append(
        f"  nodes visited {search.nodes_visited} "
        f"(leaves {search.leaf_nodes_visited})  merges {search.merges_performed}"
        f"  nonkeys found {search.nonkeys_discovered}"
    )
    lines.append(
        f"  prunings: singleton-shared {search.singleton_prunings_shared}, "
        f"one-cell {search.singleton_prunings_one_cell}, "
        f"single-entity {search.single_entity_prunings}, "
        f"futility {search.futility_prunings}"
    )
    lines.append("-- merge cache")
    hits = search.merge_cache_hits
    misses = search.merge_cache_misses
    rate = 100.0 * search.merge_cache_hit_rate
    if search.merge_cache_autodisables:
        low = f"  (self-disabled x{search.merge_cache_autodisables})"
    elif hits + misses and rate < 10.0:
        low = "  (low)"
    else:
        low = ""
    lines.append(
        f"  hits {hits}  misses {misses}  evictions "
        f"{search.merge_cache_evictions}  hit rate {rate:.1f}%{low}"
    )
    if stats.peak_rss_kb is not None:
        # getrusage is POSIX-only; the line vanishes where unmeasurable so
        # the rest of the report renders identically everywhere.
        lines.append("-- memory")
        lines.append(f"  peak rss {stats.peak_rss_kb} KiB (process-wide)")
    supervision = (
        search.tasks_retried
        + search.serial_fallbacks
        + search.pool_restarts
        + search.worker_budget_trips
    )
    if supervision:
        # Only rendered when something actually went wrong: a clean run's
        # profile stays byte-identical to previous releases.
        lines.append("-- supervision")
        lines.append(
            f"  task retries {search.tasks_retried}  serial fallbacks "
            f"{search.serial_fallbacks}  pool restarts {search.pool_restarts}"
            f"  worker budget trips {search.worker_budget_trips}"
        )
    checkpointing = (
        search.checkpoints_written
        + search.checkpoint_write_failures
        + search.slices_resumed_skipped
    )
    if checkpointing:
        # Like supervision: only rendered for checkpointed runs, so a plain
        # run's profile stays byte-identical to previous releases.
        lines.append("-- checkpoint")
        lines.append(
            f"  checkpoints written {search.checkpoints_written}  write "
            f"failures {search.checkpoint_write_failures}  slices skipped "
            f"on resume {search.slices_resumed_skipped}"
        )
    if search.packets_dispatched:
        # Parallel scheduler telemetry: only rendered when work packets were
        # dispatched, so serial profiles stay byte-identical.
        lines.append("-- scheduler")
        lines.append(
            f"  packets {search.packets_dispatched}  final packet weight "
            f"{search.packet_weight_final}  wall min/mean/max "
            f"{search.packet_wall_min_s:.4f}/{search.packet_wall_mean_s:.4f}/"
            f"{search.packet_wall_max_s:.4f}s"
        )
        lines.append(
            f"  snapshots: {search.snapshots_full} full "
            f"({search.snapshot_masks_full} masks, "
            f"{search.snapshot_bytes_full} B)  {search.snapshots_delta} delta "
            f"({search.snapshot_masks_delta} masks, "
            f"{search.snapshot_bytes_delta} B)  truncated "
            f"{search.snapshots_truncated}"
        )
    if stats.budget is not None:
        lines.append("-- budget")
        snapshot = stats.budget
        lines.append(
            f"  checkpoints {snapshot.get('checkpoints', 0)}  estimated bytes "
            f"{snapshot.get('estimated_bytes', 0)}  tripped: "
            f"{snapshot.get('tripped_reason') or 'no'}"
        )
    if attribute_order is not None:
        lines.append(f"-- attribute order (tree level -> column): {attribute_order}")
    return "\n".join(lines)

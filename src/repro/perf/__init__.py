"""Performance layer for the GORDIAN hot path.

Three coordinated optimizations, each usable on its own:

* :mod:`repro.perf.encode` — columnar dictionary encoding: one pass maps
  every attribute's values to dense integer codes before tree construction,
  so prefix-tree cells hash and compare small ints instead of arbitrary
  values (and the decode tables double as a free cardinality oracle for the
  attribute-ordering heuristic).
* :mod:`repro.perf.merge_cache` — memoization of :func:`repro.core.merge.
  merge_nodes`: the doubly recursive traversal re-merges identical node
  groups across slices; the cache keys merges by the identity tuple of
  their inputs, invalidates entries the moment a member node is freed
  (reference counting makes ids unambiguous while entries live), and bounds
  itself by entry and byte caps that cooperate with the run budget.
* :mod:`repro.perf.profile` — a per-phase wall-time and counter report for
  the CLI ``--profile`` flag and the benchmark regression harness.

The traversal itself (``NonKeyFinder``, ``merge_nodes``, the prefix-tree
walkers) runs on explicit stacks rather than Python recursion, so deep
attribute counts neither exhaust the recursion limit nor pay per-call
overhead; that rewrite lives in :mod:`repro.core`.
"""

from repro.perf.encode import ColumnCodec, decode_row, encode_columns
from repro.perf.merge_cache import MergeCache
from repro.perf.profile import render_profile

__all__ = [
    "ColumnCodec",
    "MergeCache",
    "decode_row",
    "encode_columns",
    "render_profile",
]

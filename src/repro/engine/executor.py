"""Workload execution and speedup measurement for the Figure 16 experiment.

Runs each query twice — without indexes (sequential scans only) and with the
GORDIAN-recommended indexes — verifying both executions return identical
result sets, and reports the per-query page-count speedup plus wall time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.indexes import BTreeIndex
from repro.engine.optimizer import Query, choose_plan
from repro.engine.storage import IoTracker, StoredTable
from repro.errors import EngineError

__all__ = ["QueryExecution", "run_query", "run_workload", "WorkloadReport"]


@dataclass
class QueryExecution:
    """Outcome of one query under one index configuration."""

    query_name: str
    plan: str
    pages: int
    seconds: float
    num_results: int


@dataclass
class WorkloadReport:
    """Per-query baseline/indexed executions and speedups."""

    baseline: List[QueryExecution]
    indexed: List[QueryExecution]

    def speedups(self) -> List[float]:
        """Page-count speedup per query (baseline pages / indexed pages)."""
        return [
            b.pages / max(1, i.pages)
            for b, i in zip(self.baseline, self.indexed)
        ]

    def wall_speedups(self) -> List[float]:
        """Wall-clock speedup per query (noisy at small scale)."""
        return [
            b.seconds / max(1e-9, i.seconds)
            for b, i in zip(self.baseline, self.indexed)
        ]

    def rows(self) -> List[Dict[str, object]]:
        """Tabular form for reporting."""
        out = []
        for b, i, s in zip(self.baseline, self.indexed, self.speedups()):
            out.append(
                {
                    "query": b.query_name,
                    "baseline_plan": b.plan,
                    "baseline_pages": b.pages,
                    "indexed_plan": i.plan,
                    "indexed_pages": i.pages,
                    "speedup": s,
                }
            )
        return out


def run_query(
    stored: StoredTable,
    query: Query,
    indexes: Sequence[BTreeIndex] = (),
) -> QueryExecution:
    """Optimize and execute one query, returning its cost accounting."""
    plan = choose_plan(stored, query, indexes)
    tracker = IoTracker()
    start = time.perf_counter()
    results = plan.execute(tracker)
    elapsed = time.perf_counter() - start
    return QueryExecution(
        query_name=query.name,
        plan=plan.description,
        pages=tracker.total_pages,
        seconds=elapsed,
        num_results=len(results),
    )


def run_workload(
    stored: StoredTable,
    queries: Sequence[Query],
    indexes: Sequence[BTreeIndex],
    verify: bool = True,
) -> WorkloadReport:
    """Execute the workload without and with indexes; optionally verify.

    Verification compares the multiset of result rows between the two
    configurations and raises :class:`EngineError` on any divergence — the
    indexes must accelerate queries, never change answers.
    """
    baseline: List[QueryExecution] = []
    indexed: List[QueryExecution] = []
    for query in queries:
        scan_plan = choose_plan(stored, query, ())
        idx_plan = choose_plan(stored, query, indexes)

        tracker = IoTracker()
        start = time.perf_counter()
        scan_rows = scan_plan.execute(tracker)
        scan_time = time.perf_counter() - start
        baseline.append(
            QueryExecution(query.name, scan_plan.description, tracker.total_pages,
                           scan_time, len(scan_rows))
        )

        tracker = IoTracker()
        start = time.perf_counter()
        idx_rows = idx_plan.execute(tracker)
        idx_time = time.perf_counter() - start
        indexed.append(
            QueryExecution(query.name, idx_plan.description, tracker.total_pages,
                           idx_time, len(idx_rows))
        )

        if verify and sorted(map(repr, scan_rows)) != sorted(map(repr, idx_rows)):
            raise EngineError(
                f"query {query.name}: indexed plan returned different rows "
                f"({len(idx_rows)}) than the scan ({len(scan_rows)})"
            )
    return WorkloadReport(baseline=baseline, indexed=indexed)

"""Rule-and-cost plan selection for the mini query engine.

Given a query and the available indexes, enumerate the legal access paths
(sequential scan always; an index lookup per index whose leading attributes
are bound by equality; an index-only lookup per covering index) and pick
the cheapest by estimated pages.  This is deliberately a miniature of what
the paper calls the "index wizard" consuming GORDIAN's candidate indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.engine.expressions import Conjunction
from repro.engine.indexes import BTreeIndex
from repro.engine.plans import IndexLookupPlan, IndexOnlyPlan, Plan, SeqScanPlan
from repro.engine.storage import StoredTable

__all__ = ["Query", "choose_plan", "enumerate_plans"]


@dataclass(frozen=True)
class Query:
    """A select-project query: WHERE conjunction, SELECT output attributes."""

    predicate: Conjunction
    output: Tuple[str, ...]
    name: str = "q"

    def referenced_attributes(self) -> List[str]:
        return sorted(set(self.predicate.attributes) | set(self.output))


def enumerate_plans(
    stored: StoredTable, query: Query, indexes: Sequence[BTreeIndex]
) -> List[Plan]:
    """All legal plans for ``query`` over ``stored`` with ``indexes``."""
    plans: List[Plan] = [
        SeqScanPlan(stored=stored, predicate=query.predicate, output=query.output)
    ]
    bindings = query.predicate.equality_bindings()
    referenced = query.referenced_attributes()
    for index in indexes:
        prefix = index.prefix_length(bindings)
        covering = index.covers(referenced)
        if covering:
            plans.append(
                IndexOnlyPlan(
                    stored=stored,
                    index=index,
                    predicate=query.predicate,
                    output=query.output,
                )
            )
        if prefix > 0 and not covering:
            plans.append(
                IndexLookupPlan(
                    stored=stored,
                    index=index,
                    predicate=query.predicate,
                    output=query.output,
                )
            )
    return plans


def choose_plan(
    stored: StoredTable, query: Query, indexes: Sequence[BTreeIndex]
) -> Plan:
    """The cheapest legal plan by estimated page count (scan breaks ties last)."""
    plans = enumerate_plans(stored, query, indexes)
    return min(plans, key=lambda plan: (plan.estimated_pages(), plan.description))

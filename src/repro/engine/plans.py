"""Physical query plans: sequential scan, index lookup, index-only lookup.

Each plan both *estimates* its cost in pages (for the optimizer) and
*executes*, charging actual page reads to an :class:`IoTracker` so the
Figure 16 experiment can report measured rather than estimated speedups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.expressions import Conjunction
from repro.engine.indexes import BTreeIndex
from repro.engine.storage import IoTracker, StoredTable
from repro.errors import EngineError

__all__ = ["Plan", "SeqScanPlan", "IndexLookupPlan", "IndexOnlyPlan"]


class Plan:
    """Base class: a costed, executable access path producing projected rows."""

    description: str

    def estimated_pages(self) -> int:
        raise NotImplementedError

    def execute(self, tracker: IoTracker) -> List[Tuple[object, ...]]:
        raise NotImplementedError


def _project(
    rows: Sequence[Sequence[object]], positions: Sequence[int]
) -> List[Tuple[object, ...]]:
    return [tuple(row[p] for p in positions) for row in rows]


@dataclass
class SeqScanPlan(Plan):
    """Filter every row of the heap file."""

    stored: StoredTable
    predicate: Conjunction
    output: Tuple[str, ...]

    def __post_init__(self) -> None:
        self._resolved = self.predicate.resolve(self.stored.schema)
        self._positions = [self.stored.schema.index_of(a) for a in self.output]
        self.description = f"SeqScan({self.stored.name})"

    def estimated_pages(self) -> int:
        return self.stored.num_pages

    def execute(self, tracker: IoTracker) -> List[Tuple[object, ...]]:
        matched = [
            row for _, row in self.stored.scan(tracker) if self._resolved.matches(row)
        ]
        return _project(matched, self._positions)


@dataclass
class IndexLookupPlan(Plan):
    """Probe an index with a bound equality prefix, fetch rows, re-filter."""

    stored: StoredTable
    index: BTreeIndex
    predicate: Conjunction
    output: Tuple[str, ...]

    def __post_init__(self) -> None:
        bindings = self.predicate.equality_bindings()
        self.prefix_length = self.index.prefix_length(bindings)
        if self.prefix_length == 0:
            raise EngineError(
                f"index {self.index.name} matches no equality prefix of {self.predicate!r}"
            )
        self._prefix = tuple(
            bindings[attr] for attr in self.index.attributes[: self.prefix_length]
        )
        self._resolved = self.predicate.resolve(self.stored.schema)
        self._positions = [self.stored.schema.index_of(a) for a in self.output]
        self.description = (
            f"IndexLookup({self.index.name}, prefix={self.prefix_length})"
        )

    def estimated_pages(self) -> int:
        matches = self.index.estimate_matches(self.prefix_length)
        # Worst case every matching row sits on its own page, capped by the
        # table size; this keeps the optimizer honest on low selectivity.
        data_pages = min(matches, self.stored.num_pages)
        return self.index.probe_cost(self.prefix_length, matches) + data_pages

    def execute(self, tracker: IoTracker) -> List[Tuple[object, ...]]:
        entries = self.index.probe(self._prefix, tracker)
        row_ids = [row_id for _, row_id in entries]
        rows = self.stored.fetch(row_ids, tracker)
        matched = [row for row in rows if self._resolved.matches(row)]
        return _project(matched, self._positions)


@dataclass
class IndexOnlyPlan(Plan):
    """Answer the query from index leaves alone (covering index).

    Requires the index to contain every attribute the query references —
    predicate and output alike.  Residual predicates are evaluated on the
    index key; the heap file is never touched.
    """

    stored: StoredTable
    index: BTreeIndex
    predicate: Conjunction
    output: Tuple[str, ...]

    def __post_init__(self) -> None:
        referenced = set(self.predicate.attributes) | set(self.output)
        if not self.index.covers(referenced):
            raise EngineError(
                f"index {self.index.name} does not cover {sorted(referenced)}"
            )
        bindings = self.predicate.equality_bindings()
        self.prefix_length = self.index.prefix_length(bindings)
        self._prefix = tuple(
            bindings[attr] for attr in self.index.attributes[: self.prefix_length]
        )
        key_pos = {attr: i for i, attr in enumerate(self.index.attributes)}
        self._comparison_slots = [
            (comparison, key_pos[comparison.attribute])
            for comparison in self.predicate
        ]
        self._output_slots = [key_pos[attr] for attr in self.output]
        self.description = (
            f"IndexOnly({self.index.name}, prefix={self.prefix_length})"
        )

    def estimated_pages(self) -> int:
        matches = self.index.estimate_matches(self.prefix_length)
        return self.index.probe_cost(self.prefix_length, matches)

    def execute(self, tracker: IoTracker) -> List[Tuple[object, ...]]:
        entries = self.index.probe(self._prefix, tracker)
        results: List[Tuple[object, ...]] = []
        for key, _row_id in entries:
            if all(
                comparison.evaluate(key[slot])
                for comparison, slot in self._comparison_slots
            ):
                results.append(tuple(key[slot] for slot in self._output_slots))
        return results

"""The Figure 16 query workload: "20 typical warehouse queries".

The paper ran 20 warehouse-style queries over a TPC-H-like database whose
largest table had 1.8M rows and 17 columns (our ``lineitem`` twin, scaled
down).  The generated workload mixes the access patterns that make index
recommendation interesting:

* point lookups fully binding a discovered key (huge win);
* prefix lookups binding the leading key attribute (moderate win);
* one query whose referenced attributes are entirely inside a discovered
  key — query 4, answered index-only, the paper's dramatic ~6x speedup;
* selective scans on non-key attributes (no index applies, speedup ~1x).

Queries are deterministic for a seed, and parameter values are drawn from
the actual table contents so every query selects at least one row.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.engine.expressions import Comparison, Conjunction, between, eq
from repro.engine.optimizer import Query
from repro.engine.storage import StoredTable

__all__ = ["warehouse_workload"]


def warehouse_workload(
    stored: StoredTable,
    key_attributes: Sequence[str] = ("l_orderkey", "l_linenumber"),
    num_queries: int = 20,
    seed: int = 3,
) -> List[Query]:
    """Generate the 20-query warehouse workload over the lineitem twin.

    ``key_attributes`` must name a discovered (composite) key of the table;
    queries are built relative to it so the recommended key-indexes are
    applicable exactly as in the paper's experiment.
    """
    rng = random.Random(seed)
    rows = stored.table.rows
    schema = stored.schema
    if not rows:
        raise ValueError("cannot build a workload over an empty table")
    key_attributes = tuple(key_attributes)
    key_positions = [schema.index_of(a) for a in key_attributes]

    def sample_row():
        return rows[rng.randrange(len(rows))]

    queries: List[Query] = []
    non_key_numeric = "l_quantity" if "l_quantity" in schema else schema.names[-1]
    categorical = "l_shipmode" if "l_shipmode" in schema else schema.names[-2]

    for q in range(num_queries):
        row = sample_row()
        kind = q % 5
        name = f"q{q + 1}"
        if q == 3:
            # Query 4: references only key attributes -> index-only plan.
            comparisons = [eq(key_attributes[0], row[key_positions[0]])]
            output = key_attributes
        elif kind == 0:
            # Point lookup on the full composite key.
            comparisons = [
                eq(attr, row[pos]) for attr, pos in zip(key_attributes, key_positions)
            ]
            output = (categorical, non_key_numeric)
        elif kind == 1:
            # Prefix lookup on the leading key attribute + residual range.
            comparisons = [
                eq(key_attributes[0], row[key_positions[0]]),
                between(non_key_numeric, 0, 10**9),
            ]
            output = (key_attributes[-1], non_key_numeric)
        elif kind == 2:
            # Point lookup with extra residual equality.
            comparisons = [
                eq(attr, row[pos]) for attr, pos in zip(key_attributes, key_positions)
            ]
            comparisons.append(
                eq(categorical, row[schema.index_of(categorical)])
            )
            output = (non_key_numeric,)
        elif kind == 3:
            # Non-key categorical scan: no index applies.
            comparisons = [eq(categorical, row[schema.index_of(categorical)])]
            output = (key_attributes[0], non_key_numeric)
        else:
            # Range scan on a non-key numeric: no index applies.
            pivot = row[schema.index_of(non_key_numeric)]
            comparisons = [between(non_key_numeric, pivot, pivot)]
            output = (key_attributes[0], categorical)
        queries.append(
            Query(predicate=Conjunction(comparisons), output=tuple(output), name=name)
        )
    return queries

"""Row storage with page accounting for the mini query engine.

A :class:`StoredTable` wraps a :class:`~repro.dataset.table.Table` with the
page layout of the cost model: rows live on fixed-size heap pages in
insertion order, and every access path reports the pages it touched through
an :class:`IoTracker`.  This is the substrate the Figure 16 experiment runs
on — the "DB2" of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.dataset.table import Table
from repro.engine.costmodel import CostModel, DEFAULT_COST_MODEL

__all__ = ["IoTracker", "StoredTable"]


@dataclass
class IoTracker:
    """Counts logical page reads during one query execution."""

    data_pages_read: int = 0
    index_pages_read: int = 0
    rows_examined: int = 0

    @property
    def total_pages(self) -> int:
        return self.data_pages_read + self.index_pages_read

    def reset(self) -> None:
        self.data_pages_read = 0
        self.index_pages_read = 0
        self.rows_examined = 0


class StoredTable:
    """A table laid out on heap pages.

    Row ``i`` lives on page ``i // rows_per_page``; the mapping is the
    classic heap-file layout, so index lookups that touch few rows touch few
    pages, while low-selectivity lookups degrade gracefully toward a scan —
    the behaviour the Figure 16 shapes depend on.
    """

    def __init__(self, table: Table, cost_model: CostModel = DEFAULT_COST_MODEL):
        self.table = table
        self.cost_model = cost_model
        self.rows_per_page = cost_model.rows_per_page(table.num_attributes)
        self.num_pages = cost_model.data_pages(table.num_rows, table.num_attributes)

    @property
    def schema(self):
        return self.table.schema

    @property
    def name(self) -> str:
        return self.table.name

    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    def page_of(self, row_id: int) -> int:
        """Heap page holding row ``row_id``."""
        return row_id // self.rows_per_page

    def scan(self, tracker: IoTracker) -> Iterator[Tuple[int, Tuple[object, ...]]]:
        """Full sequential scan: charges every data page, yields (row_id, row)."""
        tracker.data_pages_read += self.num_pages
        for row_id, row in enumerate(self.table.rows):
            tracker.rows_examined += 1
            yield row_id, row

    def fetch(self, row_ids: Sequence[int], tracker: IoTracker) -> List[Tuple[object, ...]]:
        """Fetch specific rows, charging each distinct page once."""
        pages: Set[int] = set()
        rows: List[Tuple[object, ...]] = []
        for row_id in row_ids:
            pages.add(self.page_of(row_id))
            tracker.rows_examined += 1
            rows.append(self.table.rows[row_id])
        tracker.data_pages_read += len(pages)
        return rows

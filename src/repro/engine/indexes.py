"""Composite B-tree-style indexes for the mini query engine.

An index over attributes ``(a, b, c)`` stores entries sorted by the key
tuple, supports equality lookups on any *prefix* of the attributes, and can
answer a query entirely from its leaves when it covers every referenced
attribute — the "index-only" plan that produced the paper's ~6x speedup on
query 4 of the Figure 16 workload.

Lookups are costed in pages via the shared :class:`CostModel`: a descent
charge plus the leaf pages spanned by the matching entry range.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.engine.storage import IoTracker, StoredTable
from repro.errors import EngineError

__all__ = ["BTreeIndex", "build_index"]


class _PrefixMin:
    """Sentinel ordering below every value, for prefix range probes."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return True

    def __gt__(self, other) -> bool:
        return False


class _PrefixMax:
    """Sentinel ordering above every value."""

    __slots__ = ()

    def __lt__(self, other) -> bool:
        return False

    def __gt__(self, other) -> bool:
        return True


_MIN = _PrefixMin()
_MAX = _PrefixMax()


def _orderable(value: object) -> Tuple[str, object]:
    """Make heterogeneous values totally ordered by (type name, value)."""
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, (int, float)):
        return ("num", value)
    return (type(value).__name__, value)


class BTreeIndex:
    """A sorted composite index over a :class:`StoredTable`."""

    def __init__(
        self,
        stored: StoredTable,
        attributes: Sequence[str],
        cost_model: Optional[CostModel] = None,
    ):
        if not attributes:
            raise EngineError("an index needs at least one attribute")
        self.stored = stored
        self.attributes: Tuple[str, ...] = tuple(attributes)
        self.cost_model = cost_model if cost_model is not None else stored.cost_model
        self._positions = [stored.schema.index_of(a) for a in self.attributes]
        entries: List[Tuple[Tuple, Tuple[object, ...], int]] = []
        for row_id, row in enumerate(stored.table.rows):
            key = tuple(row[p] for p in self._positions)
            sort_key = tuple(_orderable(v) for v in key)
            entries.append((sort_key, key, row_id))
        entries.sort(key=lambda e: e[0])
        self._entries = entries
        self._sort_keys = [e[0] for e in entries]
        self.num_leaf_pages = self.cost_model.leaf_pages(
            len(entries), len(self.attributes)
        )

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return f"idx_{self.stored.name}_{'_'.join(self.attributes)}"

    @property
    def key_width(self) -> int:
        return len(self.attributes)

    def __len__(self) -> int:
        return len(self._entries)

    def covers(self, attributes: Sequence[str]) -> bool:
        """True iff every attribute in ``attributes`` is part of the key."""
        return set(attributes) <= set(self.attributes)

    def prefix_length(self, bound: Dict[str, object]) -> int:
        """Longest index prefix fully bound by the equality bindings."""
        length = 0
        for attribute in self.attributes:
            if attribute in bound:
                length += 1
            else:
                break
        return length

    # ------------------------------------------------------------------

    def _range_for_prefix(self, prefix: Tuple) -> Tuple[int, int]:
        width = self.key_width
        low = tuple(_orderable(v) for v in prefix) + tuple(
            ("", _MIN) for _ in range(width - len(prefix))
        )
        high = tuple(_orderable(v) for v in prefix) + tuple(
            ("￿", _MAX) for _ in range(width - len(prefix))
        )
        lo = bisect.bisect_left(self._sort_keys, low)
        hi = bisect.bisect_right(self._sort_keys, high)
        return lo, hi

    def probe(
        self, prefix: Tuple, tracker: Optional[IoTracker] = None
    ) -> List[Tuple[Tuple[object, ...], int]]:
        """All ``(key, row_id)`` entries whose key starts with ``prefix``.

        Charges a descent plus the leaf pages spanned by the result.
        """
        if len(prefix) > self.key_width:
            raise EngineError(
                f"prefix of {len(prefix)} values for a {self.key_width}-attribute index"
            )
        lo, hi = self._range_for_prefix(prefix)
        matched = [(entry[1], entry[2]) for entry in self._entries[lo:hi]]
        if tracker is not None:
            tracker.index_pages_read += self.cost_model.btree_descent_pages
            tracker.index_pages_read += self.cost_model.leaf_pages(
                len(matched), self.key_width
            )
        return matched

    def probe_cost(self, prefix_length: int, estimated_matches: int) -> int:
        """Estimated pages for a probe returning ``estimated_matches`` entries."""
        return self.cost_model.btree_descent_pages + self.cost_model.leaf_pages(
            estimated_matches, self.key_width
        )

    def estimate_matches(self, prefix_length: int) -> int:
        """Uniform-distinct estimate of entries matching a bound prefix."""
        if prefix_length == 0 or not self._entries:
            return len(self._entries)
        distinct = len(
            {entry[0][:prefix_length] for entry in self._entries}
        )
        return max(1, round(len(self._entries) / max(1, distinct)))


def build_index(
    stored: StoredTable,
    attributes: Sequence[str],
    cost_model: Optional[CostModel] = None,
) -> BTreeIndex:
    """Construct a :class:`BTreeIndex` over ``stored``.

    ``cost_model`` defaults to the stored table's model so data pages and
    index pages are costed consistently.
    """
    return BTreeIndex(stored, attributes, cost_model=cost_model)

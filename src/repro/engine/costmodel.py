"""Page-based cost model for the mini query engine.

The Figure 16 experiment measures query speedups from GORDIAN-recommended
indexes.  Wall-clock on a modern laptop is noisy at our scale, so plans are
costed (and accounted during execution) in *pages read*, the classic unit:
a sequential scan reads every data page, an index lookup reads a B-tree
descent plus matching leaf pages plus the distinct data pages of matching
rows, and a covering ("index-only") lookup skips the data pages entirely —
the mechanism behind the paper's dramatic query-4 speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the page model."""

    #: Bytes per page (only ratios matter, but 4 KiB reads naturally).
    page_size: int = 4096
    #: Estimated bytes per attribute value in a stored row.
    bytes_per_value: int = 16
    #: Estimated bytes per index entry (key bytes + row pointer).
    bytes_per_pointer: int = 8
    #: Pages charged for a B-tree root-to-leaf descent.
    btree_descent_pages: int = 2

    def rows_per_page(self, num_attributes: int) -> int:
        """Data rows that fit on one page."""
        row_bytes = max(1, num_attributes * self.bytes_per_value)
        return max(1, self.page_size // row_bytes)

    def data_pages(self, num_rows: int, num_attributes: int) -> int:
        """Pages occupied by a table."""
        per_page = self.rows_per_page(num_attributes)
        return max(1, -(-num_rows // per_page))

    def entries_per_page(self, key_width: int) -> int:
        """Index entries that fit on one leaf page."""
        entry_bytes = key_width * self.bytes_per_value + self.bytes_per_pointer
        return max(1, self.page_size // entry_bytes)

    def leaf_pages(self, num_entries: int, key_width: int) -> int:
        """Leaf pages spanned by ``num_entries`` consecutive index entries."""
        if num_entries == 0:
            return 0
        per_page = self.entries_per_page(key_width)
        return max(1, -(-num_entries // per_page))


DEFAULT_COST_MODEL = CostModel()

"""Predicate expressions for the mini query engine.

Queries in the Figure 16 workload are conjunctions of per-attribute
comparisons — equality (index-matchable) and ranges (residual filters).
Predicates evaluate against positional rows given a schema-resolved
attribute index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import EngineError

__all__ = ["Comparison", "Conjunction", "eq", "between", "ge", "le"]

_OPS = {"=", "<", "<=", ">", ">=", "between"}


@dataclass(frozen=True)
class Comparison:
    """One comparison: ``attribute <op> value`` (or BETWEEN low AND high)."""

    attribute: str
    op: str
    value: object = None
    high: object = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise EngineError(f"unsupported operator {self.op!r}")
        if self.op == "between" and self.high is None:
            raise EngineError("BETWEEN needs both bounds")

    @property
    def is_equality(self) -> bool:
        return self.op == "="

    def evaluate(self, value: object) -> bool:
        if self.op == "=":
            return value == self.value
        if value is None:
            return False
        if self.op == "<":
            return value < self.value
        if self.op == "<=":
            return value <= self.value
        if self.op == ">":
            return value > self.value
        if self.op == ">=":
            return value >= self.value
        return self.value <= value <= self.high  # between


class Conjunction:
    """AND of comparisons, resolved against a schema once."""

    def __init__(self, comparisons: Sequence[Comparison]):
        self.comparisons: Tuple[Comparison, ...] = tuple(comparisons)

    def __iter__(self):
        return iter(self.comparisons)

    def __len__(self) -> int:
        return len(self.comparisons)

    @property
    def attributes(self) -> List[str]:
        return [c.attribute for c in self.comparisons]

    def equality_bindings(self) -> Dict[str, object]:
        """``{attribute: value}`` for the equality comparisons."""
        return {c.attribute: c.value for c in self.comparisons if c.is_equality}

    def resolve(self, schema) -> "ResolvedConjunction":
        indices = [schema.index_of(c.attribute) for c in self.comparisons]
        return ResolvedConjunction(self, indices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        for c in self.comparisons:
            if c.op == "between":
                parts.append(f"{c.attribute} BETWEEN {c.value!r} AND {c.high!r}")
            else:
                parts.append(f"{c.attribute} {c.op} {c.value!r}")
        return " AND ".join(parts) or "TRUE"


@dataclass
class ResolvedConjunction:
    """A conjunction bound to positional indices of a concrete schema."""

    conjunction: Conjunction
    indices: List[int]

    def matches(self, row: Sequence[object]) -> bool:
        for comparison, index in zip(self.conjunction.comparisons, self.indices):
            if not comparison.evaluate(row[index]):
                return False
        return True


def eq(attribute: str, value: object) -> Comparison:
    """Shorthand: ``attribute = value``."""
    return Comparison(attribute, "=", value)


def between(attribute: str, low: object, high: object) -> Comparison:
    """Shorthand: ``attribute BETWEEN low AND high``."""
    return Comparison(attribute, "between", low, high)


def ge(attribute: str, value: object) -> Comparison:
    """Shorthand: ``attribute >= value``."""
    return Comparison(attribute, ">=", value)


def le(attribute: str, value: object) -> Comparison:
    """Shorthand: ``attribute <= value``."""
    return Comparison(attribute, "<=", value)

"""Index advisor seeded by GORDIAN's discovered keys (paper, section 4.4).

"GORDIAN proposes a set of indexes that correspond to the discovered keys.
Such a set serves as the search space for an 'index wizard' ...".  The
paper was "naive" and built every candidate; :func:`recommend_indexes`
reproduces that, and :func:`build_recommended` materializes the indexes.
A unique index per discovered key is exactly what a DBA would declare for a
(candidate) primary key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.gordian import GordianConfig, GordianResult
from repro.engine.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.engine.indexes import BTreeIndex, build_index
from repro.engine.storage import StoredTable

__all__ = ["IndexRecommendation", "recommend_indexes", "build_recommended"]


@dataclass(frozen=True)
class IndexRecommendation:
    """One candidate index: the attribute list of a discovered key."""

    table_name: str
    attributes: Tuple[str, ...]
    unique: bool = True
    source: str = "gordian-key"

    @property
    def ddl(self) -> str:
        """The CREATE INDEX statement a DBA would run."""
        cols = ", ".join(self.attributes)
        unique = "UNIQUE " if self.unique else ""
        name = f"idx_{self.table_name}_{'_'.join(self.attributes)}"
        return f"CREATE {unique}INDEX {name} ON {self.table_name} ({cols})"


def recommend_indexes(
    stored: StoredTable,
    result: Optional[GordianResult] = None,
    config: Optional[GordianConfig] = None,
) -> List[IndexRecommendation]:
    """Candidate indexes for a table: one per discovered minimal key.

    Runs GORDIAN on the table when no precomputed ``result`` is given.
    """
    if result is None:
        result = stored.table.find_keys(config=config)
    recommendations: List[IndexRecommendation] = []
    for key in result.keys:
        attributes = tuple(stored.schema.names[i] for i in key)
        recommendations.append(
            IndexRecommendation(table_name=stored.name, attributes=attributes)
        )
    return recommendations


def build_recommended(
    stored: StoredTable,
    recommendations: Sequence[IndexRecommendation],
    cost_model: Optional[CostModel] = None,
) -> List[BTreeIndex]:
    """Materialize every recommended index (the paper's "naive" policy)."""
    return [
        build_index(stored, recommendation.attributes, cost_model=cost_model)
        for recommendation in recommendations
    ]

"""Mini query engine: the substrate of the Figure 16 index-advisor experiment."""

from repro.engine.advisor import (
    IndexRecommendation,
    build_recommended,
    recommend_indexes,
)
from repro.engine.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.engine.executor import (
    QueryExecution,
    WorkloadReport,
    run_query,
    run_workload,
)
from repro.engine.expressions import Comparison, Conjunction, between, eq, ge, le
from repro.engine.indexes import BTreeIndex, build_index
from repro.engine.optimizer import Query, choose_plan, enumerate_plans
from repro.engine.plans import IndexLookupPlan, IndexOnlyPlan, Plan, SeqScanPlan
from repro.engine.storage import IoTracker, StoredTable
from repro.engine.workload import warehouse_workload

__all__ = [
    "IndexRecommendation",
    "build_recommended",
    "recommend_indexes",
    "DEFAULT_COST_MODEL",
    "CostModel",
    "QueryExecution",
    "WorkloadReport",
    "run_query",
    "run_workload",
    "Comparison",
    "Conjunction",
    "between",
    "eq",
    "ge",
    "le",
    "BTreeIndex",
    "build_index",
    "Query",
    "choose_plan",
    "enumerate_plans",
    "IndexLookupPlan",
    "IndexOnlyPlan",
    "Plan",
    "SeqScanPlan",
    "IoTracker",
    "StoredTable",
    "warehouse_workload",
]

#!/usr/bin/env python
"""Out-of-core scale benchmark entry point.

Generates a dbgen-style lineitem CSV, runs the in-memory pipeline
(uncapped and under an ``RLIMIT_AS`` cap) and the out-of-core pipeline
(under the same cap) in isolated subprocesses, and writes
``BENCH_scale.json`` at the repo root.  See
:mod:`repro.experiments.scale` for the roles and the document layout.

Usage:

    python scripts/bench_scale.py                 # defaults, write JSON
    python scripts/bench_scale.py --scale 8 --cap-mb 410
    python scripts/bench_scale.py --check         # gate: identical must hold

``--check`` exits nonzero unless the committed (or freshly produced)
document has ``identical: true`` — the only field CI gates on; timings
and RSS are recorded for humans.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.experiments.scale import run_scale_bench  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_scale.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=8.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--cap-mb", type=int, default=410)
    parser.add_argument("--chunk-rows", type=int, default=8192)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument("--timeout", type=float, default=900.0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify an existing document instead of overwriting it",
    )
    args = parser.parse_args(argv)

    if args.check and args.out.exists():
        document = json.loads(args.out.read_text())
    else:
        document = run_scale_bench(
            scale=args.scale,
            seed=args.seed,
            cap_mb=args.cap_mb,
            chunk_rows=args.chunk_rows,
            out_path=None if args.check else args.out,
            timeout=args.timeout,
        )

    runs = document["runs"]
    print(f"dataset: {document['dataset']['rows']} rows x "
          f"{document['dataset']['columns']} cols, "
          f"{document['dataset']['csv_bytes']} CSV bytes")
    print(f"cap: {document['cap_mb']} MiB (RLIMIT_AS)")
    for name, run in runs.items():
        if run.get("oom"):
            print(f"  {name}: OOM (expected for the capped in-memory role)")
        else:
            print(f"  {name}: build {run.get('build_seconds'):.3f}s, "
                  f"peak rss {run.get('peak_rss_kb')} KiB")
    print(f"identical: {document['identical']}")
    print(f"inmem_capped_oom: {document['inmem_capped_oom']}")
    print("capped/uncapped build throughput: "
          f"{document['capped_build_throughput_vs_uncapped']}")

    if not document["identical"]:
        print("FAIL: out-of-core answer differs from in-memory reference",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Chaos gate for the key-discovery service.

Drives a real ``repro serve`` process through the failure sequence the
service exists to survive, then verifies the core promise — **every
accepted job lands in a correct terminal or resumable state, and nothing
leaks** — from the outside:

1. Submit a keyplant dataset and SIGKILL a pool worker mid-job; the job
   must still reach a terminal state with the planted key discovered.
2. Cancel a second job mid-search; it must land ``cancelled`` and free
   its slot.
3. SIGKILL the server itself with a job in flight; the on-disk journal
   (read directly, not through the server) must show every job terminal
   or resumable, and a restarted server must finish the interrupted job.
4. Re-submit an already-profiled dataset; it must be served from the
   result cache without touching the worker pool.
5. SIGTERM-drain and check for leaked shared-memory segments, stray
   worker processes, and orphaned temp/upload files.

Exit status 0 means the gate passed.  Usage::

    PYTHONPATH=src python scripts/service_chaos.py

The search is slowed via the repo's own fault-injection plan (a per-visit
sleep) so "mid-job" windows are wide enough to be deterministic; the
worker kill itself is a real ``SIGKILL`` to a real forked process.
"""

import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.datagen import KeyPlantSpec, generate_planted  # noqa: E402
from repro.robustness.faults import ENV_VAR, env_plan  # noqa: E402
from repro.service.journal import JobJournal  # noqa: E402

TERMINAL = {"succeeded", "degraded", "failed", "cancelled"}


def fail(message: str) -> None:
    print(f"CHAOS GATE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)


class Server:
    """One ``repro serve`` subprocess plus a blocking HTTP client."""

    def __init__(self, state_dir: Path, plan: str = ""):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env.pop(ENV_VAR, None)
        if plan:
            env[ENV_VAR] = plan
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state_dir), "--port", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        self.port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if line.startswith("serving on http://"):
                self.port = int(line.rsplit(":", 1)[1])
                break
            if self.proc.poll() is not None:
                break
        if self.port is None:
            fail(f"server did not start; stderr: {self.proc.stderr.read()}")

    def request(self, method, path, body=None, timeout=15):
        url = f"http://127.0.0.1:{self.port}{path}"
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(url, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                return response.status, json.loads(response.read() or b"null")
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read() or b"null")

    def wait_state(self, job_id, states, timeout=180.0):
        deadline = time.monotonic() + timeout
        payload = None
        while time.monotonic() < deadline:
            _, payload = self.request("GET", f"/jobs/{job_id}")
            if payload["state"] in states:
                return payload
            time.sleep(0.05)
        fail(f"job {job_id} never reached {states}; last: {payload}")

    def workers(self):
        """Forked pool workers: children that aren't the resource tracker."""
        try:
            children = Path(
                f"/proc/{self.proc.pid}/task/{self.proc.pid}/children"
            ).read_text().split()
        except OSError:
            return []
        workers = []
        for pid in children:
            try:
                cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
            except OSError:
                continue
            if b"resource_tracker" not in cmdline:
                workers.append(int(pid))
        return workers

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def sigterm(self, timeout=120):
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


def write_keyplant_csv(path: Path, num_rows: int = 400, seed: int = 11) -> list:
    """A planted-key dataset; returns the planted key as attribute names."""
    planted = generate_planted(KeyPlantSpec(
        num_rows=num_rows, seed=seed, key_radices=(12, 12, 8),
    ))
    names = list(planted.table.schema.names)
    with open(path, "w") as handle:
        handle.write(",".join(names) + "\n")
        for row in planted.table.rows:
            handle.write(",".join(str(v) for v in row) + "\n")
    return list(planted.key_names)


def assert_no_leaks(state_dir: Path) -> None:
    leaked = [n for n in os.listdir("/dev/shm") if n.startswith("psm_")] \
        if os.path.isdir("/dev/shm") else []
    check(not leaked, f"leaked shared-memory segments: {leaked}")
    strays = subprocess.run(
        ["pgrep", "-f", "repro serve"], capture_output=True, text=True
    ).stdout.split()
    check(not strays, f"stray server/worker processes: {strays}")
    temps = [p for p in state_dir.rglob("*")
             if p.name.endswith(".tmp") or ".tmp." in p.name]
    check(not temps, f"orphaned temp files: {temps}")
    uploads = state_dir / "uploads"
    if uploads.exists():
        check(not list(uploads.iterdir()), "orphaned upload spools")


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="svc-chaos-"))
    state = workdir / "state"
    try:
        dataset = workdir / "keyplant.csv"
        key_names = write_keyplant_csv(dataset)
        # A second dataset for the cancel/SIGKILL jobs: same content would
        # be served from the result cache once job 1 succeeds (that is
        # step 5's assertion), leaving nothing running to interrupt.
        other = workdir / "keyplant-other.csv"
        write_keyplant_csv(other, num_rows=800, seed=13)
        # Slow every NonKeyFinder visit slightly: wide, deterministic
        # mid-job windows for the worker kill and the client cancel.
        plan = env_plan(
            {"point": "nonkey.visit", "action": "sleep", "seconds": 0.002},
        )
        server = Server(state, plan=plan)

        # -- 1. SIGKILL a pool worker mid-job ---------------------------
        _, job1 = server.request("POST", "/jobs", {
            "dataset_path": str(dataset),
            "engine": {"workers": 2, "clamp_workers": False,
                       "parallel_min_rows": 0},
        })
        server.wait_state(job1["id"], ("running",))
        deadline = time.monotonic() + 60
        while not server.workers() and time.monotonic() < deadline:
            time.sleep(0.05)
        victims = server.workers()
        check(bool(victims), "no pool worker appeared to kill")
        os.kill(victims[0], signal.SIGKILL)
        print(f"killed pool worker {victims[0]} mid-job")
        final = server.wait_state(job1["id"], TERMINAL)
        check(final["state"] in ("succeeded", "degraded"),
              f"job after worker kill ended {final['state']}")
        _, result = server.request("GET", f"/jobs/{job1['id']}/result")
        found = result["result"]["keys"] if final["state"] == "succeeded" \
            else [k["attrs"] for k in result["result"]["approximate"]["keys"]]
        check(sorted(key_names) in [sorted(k) for k in found],
              f"planted key {key_names} not in discovered keys {found}")
        print(f"job survived worker kill: {final['state']}, keys correct")

        # -- 2. cancel a second job mid-search --------------------------
        _, job2 = server.request(
            "POST", "/jobs", {"dataset_path": str(other)}
        )
        server.wait_state(job2["id"], ("running",))
        status, ack = server.request("POST", f"/jobs/{job2['id']}/cancel")
        check(status in (200, 202), f"cancel returned {status}")
        final = server.wait_state(job2["id"], TERMINAL)
        check(final["state"] == "cancelled",
              f"cancelled job ended {final['state']}")
        print("mid-search cancel landed: cancelled")

        # -- 3. SIGKILL the server itself with a job in flight ----------
        _, job3 = server.request(
            "POST", "/jobs", {"dataset_path": str(other)}
        )
        server.wait_state(job3["id"], ("running",))
        server.sigkill()
        print("server SIGKILLed with a job in flight")

        # The journal — read directly, no server — must tell a coherent
        # story: every job terminal or resumable (queued).
        replayed = JobJournal(state / "journal.bin").replay()
        check(set(replayed.jobs) == {job1["id"], job2["id"], job3["id"]},
              f"journal lost jobs: {sorted(replayed.jobs)}")
        for job_id, record in replayed.jobs.items():
            check(record["state"] in TERMINAL | {"queued"},
                  f"{job_id} in bad journal state {record['state']}")
        check(replayed.jobs[job3["id"]]["state"] == "queued",
              "interrupted job not resumable in the journal")
        print("journal coherent after SIGKILL: all jobs terminal/resumable")

        # -- 4. restart: replay finishes the interrupted job ------------
        server = Server(state, plan=plan)
        final = server.wait_state(job3["id"], TERMINAL, timeout=240)
        check(final["state"] == "succeeded",
              f"replayed job ended {final['state']}")
        check(final.get("recovered") is True, "replayed job not marked recovered")
        print("restart replayed the interrupted job to success")

        # -- 5. repeat submit is served from cache, pool untouched ------
        _, stats_before = server.request("GET", "/stats")
        _, job4 = server.request(
            "POST", "/jobs", {"dataset_path": str(dataset)}
        )
        final = server.wait_state(job4["id"], TERMINAL)
        check(final["state"] == "succeeded" and final["cache_hit"] is True,
              f"repeat submit not a cache hit: {final}")
        _, stats_after = server.request("GET", "/stats")
        check(stats_after["cache"]["hits"] > stats_before["cache"]["hits"],
              "cache hit counter did not advance")
        check(server.workers() == [],
              "cache-served job touched the worker pool")
        print("repeat submit served from cache without touching the pool")

        # -- 6. drain and leak check ------------------------------------
        code = server.sigterm()
        check(code == 0, f"SIGTERM drain exited {code}")
        assert_no_leaks(state)
        print("drained cleanly; no leaked segments, processes, or temp files")
        print("CHAOS GATE PASSED")
        return 0
    finally:
        subprocess.run(["pkill", "-f", "repro serve"], capture_output=True)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

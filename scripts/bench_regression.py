#!/usr/bin/env python
"""Fixed-seed performance regression harness for the GORDIAN core.

Runs the core suite — prefix-tree build, NonKeyFinder traversal, and the
end-to-end ``find_keys`` pipeline on the keyplant and zipfian generators —
with pinned seeds, and writes the measurements to ``BENCH_core.json`` at
the repository root.  Every end-to-end suite also runs the frozen
pre-optimization implementation (:mod:`repro.perf.reference`) on the same
rows and verifies the two pipelines discover identical keys and non-keys,
so the reported speedup is anchored to a correctness check, not just a
stopwatch.

Modes
-----
default
    Run the suite and (re)write ``BENCH_core.json``.
``--check``
    Run the suite and compare against the committed baseline.  The gate
    fails (exit 1) when any *tracked metric* regresses by more than
    ``--tolerance`` (default 25%), or when optimized and reference results
    disagree.  Tracked metrics are the deterministic structural counters
    (node visits, merges, allocations, cache hits) — wall-clock numbers are
    recorded for humans but never gate CI, where timer noise would flake.
``--check-timings``
    Additionally gate on the end-to-end speedup ratio (local use).

Usage::

    PYTHONPATH=src python scripts/bench_regression.py            # rebaseline
    PYTHONPATH=src python scripts/bench_regression.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.gordian import (  # noqa: E402
    GordianConfig,
    _order_attributes,
    find_keys,
)
from repro.core.nonkey_finder import NonKeyFinder  # noqa: E402
from repro.core.nonkey_set import NonKeySet  # noqa: E402
from repro.core.prefix_tree import build_prefix_tree  # noqa: E402
from repro.core.stats import RunStats  # noqa: E402
from repro.datagen.keyplant import KeyPlantSpec, generate_planted  # noqa: E402
from repro.datagen.zipfian import ZipfianSpec, generate_zipfian_table  # noqa: E402
from repro.experiments.datasets import (  # noqa: E402
    WideSchemaSpec,
    generate_wide_schema,
)
from repro.perf.encode import encode_columns  # noqa: E402
from repro.perf.merge_cache import MergeCache  # noqa: E402
from repro.perf.reference import find_keys_reference  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_core.json"
SCHEMA = 1

#: Counters gated by ``--check``.  ``higher_is_better`` flips the direction:
#: doing *more* work (visits, merges, allocations) is a regression, while
#: fewer cache hits is.
TRACKED = {
    "nodes_visited": False,
    "merges_performed": False,
    "merge_nodes_input": False,
    "tree_nodes_created": False,
    "tree_cells_created": False,
    "merge_cache_hits": True,
}


def _keyplant_rows():
    """The headline fixed-seed keyplant dataset: a 3-attribute planted key
    among noise columns, stringified like CSV input."""
    spec = KeyPlantSpec(
        num_rows=2000,
        key_radices=(8, 10, 25),
        num_noise_attributes=11,
        noise_cardinality=5,
        seed=42,
    )
    dataset = generate_planted(spec)
    return [[str(value) for value in row] for row in dataset.table.rows]


def _zipfian_rows():
    spec = ZipfianSpec(
        num_entities=1500, num_attributes=13, cardinality=9, theta=0.8, seed=3
    )
    return [list(row) for row in generate_zipfian_table(spec).rows]


def _wide_rows():
    """The wide-schema (d = 66 > 64) dataset: every antichain mask spans
    two packed words, exercising the multi-word bitset kernels."""
    table = generate_wide_schema(WideSchemaSpec())
    return [[str(value) for value in row] for row in table.rows]


def _search_metrics(stats: RunStats) -> dict:
    search = stats.search
    return {
        "nodes_visited": search.nodes_visited,
        "merges_performed": search.merges_performed,
        "merge_nodes_input": search.merge_nodes_input,
        "tree_nodes_created": stats.tree.nodes_created,
        "tree_cells_created": stats.tree.cells_created,
        "merge_cache_hits": search.merge_cache_hits,
        "merge_cache_misses": search.merge_cache_misses,
        "nonkeys_discovered": search.nonkeys_discovered,
        "futility_prunings": search.futility_prunings,
    }


def _bench_build(rows, reps: int) -> dict:
    num_attributes = len(rows[0])
    encoded, _ = encode_columns(rows, num_attributes)
    best = float("inf")
    stats = None
    for _ in range(reps):
        run_stats = RunStats()
        start = time.perf_counter()
        tree = build_prefix_tree(encoded, num_attributes, stats=run_stats.tree)
        best = min(best, time.perf_counter() - start)
        stats = run_stats
        del tree
    return {
        "metrics": {
            "tree_nodes_created": stats.tree.nodes_created,
            "tree_cells_created": stats.tree.cells_created,
        },
        "timings": {"build_s": round(best, 4)},
    }


def _bench_find_nonkeys(rows, reps: int) -> dict:
    num_attributes = len(rows[0])
    # Mirror the pipeline: encode, then permute columns with the same
    # attribute-ordering heuristic ``find_keys`` applies before building.
    encoded, _ = encode_columns(rows, num_attributes)
    order = _order_attributes(rows, num_attributes, GordianConfig().attribute_order)
    encoded = [tuple(row[a] for a in order) for row in encoded]
    best = float("inf")
    stats = None
    for _ in range(reps):
        run_stats = RunStats()
        tree = build_prefix_tree(encoded, num_attributes, stats=run_stats.tree)
        cache = MergeCache(stats=run_stats.search)
        finder = NonKeyFinder(tree, stats=run_stats.search, merge_cache=cache)
        start = time.perf_counter()
        finder.run()
        best = min(best, time.perf_counter() - start)
        stats = run_stats
    return {
        "metrics": _search_metrics(stats),
        "timings": {"search_s": round(best, 4)},
    }


def _bench_wide_schema(rows, reps: int) -> dict:
    """Wide-schema traversal plus antichain-path vectorize on/off timings.

    The traversal runs once per rep with the default (auto) kernel and
    gates CI through its deterministic structural counters.  The
    vectorize comparison times the *antichain path* in isolation on the
    parallel parent's merge workload: seeded-shuffled copies of the final
    antichain are unioned back into it in packet-sized batches — exactly
    the re-minimization performed when overlapping worker results (and
    digest/delta masks a worker already holds) arrive.  Once through the
    packed kernel (batched multi-word subsume scan) and once through the
    pure-Python loops; both must leave the antichain unchanged, so the
    speedup is anchored to an identity check.  The full-traversal wall
    time is merge-dominated at this depth, which is why the kernel
    comparison targets the antichain path rather than end-to-end search.
    """
    import random

    num_attributes = len(rows[0])
    encoded, _ = encode_columns(rows, num_attributes)
    order = _order_attributes(rows, num_attributes, GordianConfig().attribute_order)
    encoded = [tuple(row[a] for a in order) for row in encoded]
    best_search = float("inf")
    stats = None
    final_masks: list = []
    for _ in range(reps):
        run_stats = RunStats()
        tree = build_prefix_tree(encoded, num_attributes, stats=run_stats.tree)
        cache = MergeCache(stats=run_stats.search)
        finder = NonKeyFinder(tree, stats=run_stats.search, merge_cache=cache)
        start = time.perf_counter()
        finder.run()
        best_search = min(best_search, time.perf_counter() - start)
        stats = run_stats
        final_masks = sorted(finder.nonkeys.masks())

    batch, copies = 256, 4
    rng = random.Random(1)
    shuffled = []
    for _ in range(copies):
        copy = list(final_masks)
        rng.shuffle(copy)
        shuffled.append(copy)

    def union_overlap(vectorize):
        merged = NonKeySet.from_antichain(
            num_attributes, final_masks, vectorize=vectorize
        )
        for copy in shuffled:
            for start in range(0, len(copy), batch):
                merged.union(copy[start : start + batch])
        return merged

    best_vec = best_py = float("inf")
    vec_masks = py_masks = None
    for _ in range(max(3, reps)):
        start = time.perf_counter()
        vec_masks = sorted(union_overlap(True).masks())
        mid = time.perf_counter()
        py_masks = sorted(union_overlap(False).masks())
        best_vec = min(best_vec, mid - start)
        best_py = min(best_py, time.perf_counter() - mid)
    identical = vec_masks == py_masks == final_masks
    return {
        "metrics": _search_metrics(stats),
        "timings": {
            "search_s": round(best_search, 4),
            "union_vectorized_s": round(best_vec, 4),
            "union_python_s": round(best_py, 4),
            "speedup_vectorize": round(best_py / best_vec, 3),
        },
        "identical": identical,
        "num_attributes": num_attributes,
        "union_masks": copies * len(final_masks),
        "versus": "python antichain path",
    }


def _bench_parallel_e2e(rows, reps: int, workers: int) -> dict:
    """Serial vs parallel ``find_keys`` on the same rows.

    The gate is *identity* (keys and non-keys must match the serial run
    exactly); ``metrics`` stays empty on purpose — parallel work counters
    depend on task scheduling and snapshot timing, so gating them would
    flake.  Timings and the recorded ``cpu_count`` tell the real story:
    on a single-core runner the parallel run can only break even at best,
    and the committed numbers say so honestly.
    """
    import os

    num_attributes = len(rows[0])
    serial_config = GordianConfig(encode=True, merge_cache=True)
    parallel_config = GordianConfig(
        encode=True,
        merge_cache=True,
        workers=workers,
        clamp_workers=False,      # exercise the true parallel path even on
        parallel_min_rows=0,      # CPU-starved CI runners
        parallel_build_min_rows=0,
    )
    best_serial = best_parallel = float("inf")
    serial = parallel = None
    for _ in range(reps):
        start = time.perf_counter()
        serial = find_keys(rows, num_attributes=num_attributes,
                           config=serial_config)
        mid = time.perf_counter()
        parallel = find_keys(rows, num_attributes=num_attributes,
                             config=parallel_config)
        best_serial = min(best_serial, mid - start)
        best_parallel = min(best_parallel, time.perf_counter() - mid)
    identical = (
        sorted(parallel.keys) == sorted(serial.keys)
        and sorted(parallel.nonkeys) == sorted(serial.nonkeys)
    )
    return {
        "metrics": {},
        "timings": {
            "serial_s": round(best_serial, 4),
            "parallel_s": round(best_parallel, 4),
            "speedup_vs_serial": round(best_serial / best_parallel, 3),
        },
        "identical": identical,
        "num_keys": len(parallel.keys),
        "workers": workers,
        "cpu_count": os.cpu_count(),
    }


def _bench_end_to_end(rows, reps: int) -> dict:
    num_attributes = len(rows[0])
    config = GordianConfig(encode=True, merge_cache=True)
    best_ref = best_opt = float("inf")
    optimized = reference = None
    for _ in range(reps):
        start = time.perf_counter()
        reference = find_keys_reference(rows, num_attributes=num_attributes)
        mid = time.perf_counter()
        optimized = find_keys(rows, num_attributes=num_attributes, config=config)
        best_ref = min(best_ref, mid - start)
        best_opt = min(best_opt, time.perf_counter() - mid)
    identical = (
        optimized.keys == reference.keys
        and optimized.nonkeys == reference.nonkeys
    )
    return {
        "metrics": _search_metrics(optimized.stats),
        "timings": {
            "reference_s": round(best_ref, 4),
            "optimized_s": round(best_opt, 4),
            "speedup": round(best_ref / best_opt, 3),
        },
        "identical": identical,
        "num_keys": len(optimized.keys),
    }


def run_suites(reps: int, workers: int = 4) -> dict:
    keyplant = _keyplant_rows()
    zipfian = _zipfian_rows()
    suites = {
        "build_keyplant": _bench_build(keyplant, reps),
        "find_nonkeys_keyplant": _bench_find_nonkeys(keyplant, reps),
        "keyplant_e2e": _bench_end_to_end(keyplant, reps),
        "keyplant_e2e_parallel": _bench_parallel_e2e(keyplant, reps, workers),
        "zipfian_e2e": _bench_end_to_end(zipfian, reps),
        "wide_schema": _bench_wide_schema(_wide_rows(), reps),
    }
    return {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "suites": suites,
    }


def render(report: dict) -> str:
    lines = [f"bench_regression (python {report['python']})"]
    for name, suite in report["suites"].items():
        timings = "  ".join(
            f"{key}={value}" for key, value in suite["timings"].items()
        )
        lines.append(f"  {name}: {timings}")
        if "identical" in suite:
            versus = suite.get(
                "versus", "serial" if "workers" in suite else "reference"
            )
            detail = (
                f"  (keys={suite['num_keys']})"
                if "num_keys" in suite
                else f"  (unioned {suite.get('union_masks', 0)} masks)"
            )
            lines.append(
                f"    identical keys/non-keys vs {versus}: "
                f"{suite['identical']}{detail}"
            )
    return "\n".join(lines)


def check(report: dict, baseline: dict, tolerance: float, timings: bool) -> int:
    failures = []
    for name, suite in report["suites"].items():
        base_suite = baseline.get("suites", {}).get(name)
        if base_suite is None:
            failures.append(f"{name}: missing from baseline (rebaseline first)")
            continue
        if suite.get("identical") is False:
            failures.append(f"{name}: optimized and reference results DIFFER")
        for metric, higher_is_better in TRACKED.items():
            current = suite["metrics"].get(metric)
            base = base_suite.get("metrics", {}).get(metric)
            if current is None or base is None:
                continue
            if base == 0:
                continue
            ratio = current / base
            if higher_is_better:
                regressed = ratio < 1.0 - tolerance
            else:
                regressed = ratio > 1.0 + tolerance
            if regressed:
                failures.append(
                    f"{name}.{metric}: {base} -> {current} "
                    f"({100 * (ratio - 1):+.1f}%, tolerance {tolerance:.0%})"
                )
        if timings and "speedup" in suite.get("timings", {}):
            base_speedup = base_suite.get("timings", {}).get("speedup")
            speedup = suite["timings"]["speedup"]
            if base_speedup and speedup < base_speedup * (1.0 - tolerance):
                failures.append(
                    f"{name}.speedup: {base_speedup} -> {speedup} "
                    f"(tolerance {tolerance:.0%})"
                )
    if failures:
        print("REGRESSIONS DETECTED:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"check passed: no tracked metric regressed beyond {tolerance:.0%}")
    return 0


def write_packet_profile(path: Path, workers: int) -> None:
    """Run the wide-schema dataset through a parallel ``find_keys`` and
    write its profile report — including the ``-- scheduler`` section with
    packet timings and snapshot full/delta byte counts — to ``path``.

    This is the CI artifact for the adaptive scheduler: a real multi-worker
    run over the multi-word dataset with the feedback controller, delta
    snapshots, and the batched kernel all enabled.
    """
    from repro.perf.profile import render_profile

    rows = _wide_rows()
    config = GordianConfig(
        encode=True,
        merge_cache=True,
        workers=workers,
        clamp_workers=False,
        parallel_min_rows=0,
        parallel_build_min_rows=0,
    )
    result = find_keys(rows, num_attributes=len(rows[0]), config=config)
    report = render_profile(result.stats)
    path.write_text(report + "\n")
    print(f"packet profile (workers={workers}) written to {path}")
    print(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline instead "
                             "of rewriting it")
    parser.add_argument("--check-timings", action="store_true",
                        help="with --check: also gate on the e2e speedup ratio")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    parser.add_argument("--reps", type=int, default=2,
                        help="timing repetitions, best-of (default 2)")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel e2e suite "
                             "(default 4; not clamped to the CPU count)")
    parser.add_argument("--assert-parallel-speedup", type=float, default=None,
                        metavar="MIN",
                        help="fail unless the parallel e2e suite reports "
                             "speedup_vs_serial >= MIN (for multi-core CI "
                             "runners; keep off on single-core boxes)")
    parser.add_argument("--packet-profile", type=Path, default=None,
                        metavar="PATH",
                        help="additionally run the wide-schema dataset "
                             "through a parallel find_keys (--workers, "
                             "vectorized) and write its scheduler/packet "
                             "profile report to PATH (CI artifact)")
    parser.add_argument("--output", type=Path, default=BASELINE_PATH,
                        help="baseline path (default BENCH_core.json)")
    args = parser.parse_args(argv)

    report = run_suites(max(1, args.reps), workers=max(2, args.workers))
    print(render(report))

    if args.packet_profile is not None:
        write_packet_profile(args.packet_profile, max(2, args.workers))

    for name, suite in report["suites"].items():
        if suite.get("identical") is False:
            print(f"FATAL: {name} results differ from the reference "
                  "implementation", file=sys.stderr)
            return 2

    if args.assert_parallel_speedup is not None:
        suite = report["suites"]["keyplant_e2e_parallel"]
        speedup = suite["timings"]["speedup_vs_serial"]
        if speedup < args.assert_parallel_speedup:
            print(f"FATAL: parallel speedup {speedup} below required "
                  f"{args.assert_parallel_speedup} "
                  f"(cpu_count={suite['cpu_count']})", file=sys.stderr)
            return 2
        print(f"parallel speedup gate passed: {speedup} >= "
              f"{args.assert_parallel_speedup}")

    if args.check:
        if not args.output.exists():
            print(f"no baseline at {args.output}; run without --check first",
                  file=sys.stderr)
            return 1
        baseline = json.loads(args.output.read_text())
        return check(report, baseline, args.tolerance, args.check_timings)

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
